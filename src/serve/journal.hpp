// Write-ahead request journal for the `sbst serve` daemon.
//
// The daemon's crash-safety story (ROADMAP open item 2; the BISSO
// controller's journaled selftest is the exemplar): every work request is
// appended to an append-only journal BEFORE it executes (a `begin` record
// carrying the raw request line) and sealed AFTER its response has been
// emitted and flushed (a `seal` record carrying the response's byte count
// and FNV-1a hash). A crash therefore never loses a request: on restart,
// `sbst serve --replay-journal` re-runs every begin without a matching seal
// and re-emits its response, and re-renders every sealed request to verify
// the recorded response hash still matches (an audit that the recovered
// daemon computes the same answers the crashed one did).
//
// Record format (all integers little-endian via common::ByteWriter):
//
//   u64  magic        "SBSTWAL\0"
//   u8   type         1 = begin, 2 = seal
//   u64  seq          request sequence number (same seq pairs begin/seal)
//   u64  payload_len  length prefix of the payload that follows
//   ...  payload      begin: the raw request line bytes
//                     seal:  u8 status + u64 response_size + u64 response_fnv
//   u64  checksum     FNV-1a over every preceding byte of the record
//
// Scan robustness contract (tests/test_serve_faults.cpp): scanning NEVER
// crashes and NEVER trusts a damaged record. A damaged record in the
// interior of the file is skipped by resyncing to the next magic
// occurrence (counted in `corrupt_skipped`); damage that reaches EOF —
// a record cut off mid-write, or trailing bytes with no further magic to
// resync to — marks `truncated_tail` and stops. `valid_end` is the byte
// offset just past the last valid record; the daemon truncates the file
// there before reopening for append, so recovery seals are never written
// after unreachable garbage. Appends fflush() after every record so a
// begin is on disk before its request starts executing even if the
// process is killed with SIGKILL mid-request.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sbst::serve {

/// One parsed journal record.
struct JournalRecord {
  enum class Type : std::uint8_t { kBegin = 1, kSeal = 2 };
  Type type = Type::kBegin;
  std::uint64_t seq = 0;
  std::string line;                  // begin: the raw request line
  std::uint8_t status = 0;           // seal: 0 = ok, nonzero = err class
  std::uint64_t response_size = 0;   // seal: emitted response bytes
  std::uint64_t response_hash = 0;   // seal: FNV-1a of the response bytes
};

/// A begin record paired (by seq) with its seal, if one exists.
struct JournalEntry {
  std::uint64_t seq = 0;
  std::string line;
  bool sealed = false;
  std::uint8_t status = 0;
  std::uint64_t response_size = 0;
  std::uint64_t response_hash = 0;
};

/// Result of scanning a journal file. Damage is counted, never fatal.
struct JournalScan {
  std::vector<JournalRecord> records;
  std::size_t corrupt_skipped = 0;  // interior damage resynced over
  bool truncated_tail = false;      // damage reaching EOF (torn write)
  bool missing = false;             // file absent or unreadable
  std::size_t valid_end = 0;        // offset just past the last valid record
  std::size_t file_size = 0;        // total bytes scanned

  /// Begin records in seq order, each annotated with its seal (a seal with
  /// no begin — possible only through targeted corruption — is dropped).
  std::vector<JournalEntry> entries() const;
};

/// Append counters, reported by the serve `stats` verb.
struct JournalStats {
  std::uint64_t begins = 0;
  std::uint64_t seals = 0;
  std::uint64_t append_failures = 0;
  // Populated by the startup replay pass (zero otherwise):
  std::uint64_t replayed = 0;          // unsealed requests re-run
  std::uint64_t verified = 0;          // sealed requests re-rendered, hash ok
  std::uint64_t verify_mismatches = 0; // sealed requests whose hash diverged
  std::uint64_t corrupt_skipped = 0;   // damaged records skipped by the scan
};

class Journal {
 public:
  explicit Journal(std::string path);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  const std::string& path() const { return path_; }

  /// Opens (creates) the journal for appending. False when the filesystem
  /// refuses — the daemon then runs unjournaled (fail-soft, with a stderr
  /// warning from the caller).
  bool open_append();
  bool is_open() const { return file_ != nullptr; }

  /// Appends + flushes a begin record. Thread-safe. False (and counted)
  /// when the write fails; the request still executes.
  bool append_begin(std::uint64_t seq, std::string_view line);
  /// Appends + flushes a seal record after the response was emitted.
  bool append_seal(std::uint64_t seq, std::uint8_t status,
                   std::uint64_t response_size, std::uint64_t response_hash);

  JournalStats stats() const;
  /// Folds the startup replay pass's outcome into the reported stats.
  void note_replay(std::uint64_t replayed, std::uint64_t verified,
                   std::uint64_t verify_mismatches,
                   std::uint64_t corrupt_skipped);

  /// Parses a journal file; never throws, never crashes on damage.
  static JournalScan scan_file(const std::string& path);

 private:
  bool append_locked(const std::vector<std::uint8_t>& record);

  std::string path_;
  std::FILE* file_ = nullptr;
  mutable std::mutex mu_;
  JournalStats stats_;
};

}  // namespace sbst::serve
