// `sbst serve`: a warm, long-running campaign daemon over one shared
// GradingSession, plus the renderers it shares with the one-shot CLI.
//
// The one-shot CLI pays the full artifact cost (collapse, compile, decode,
// good run) on every invocation — the persistent store removes the rebuild
// cost but not the process-startup or deserialization cost. serve keeps one
// GradingSession alive across requests instead, so the second and every
// later request starts fully warm, and layers the store underneath for
// warm-across-process restarts.
//
// Protocol: deterministic line-oriented request/response on (in, out).
// One request per line, tokens separated by spaces:
//
//   ping                 liveness probe
//   evaluate             run + fault-grade the full SBST program
//   campaign [<cut>...]  guarded injection campaign (default alu shifter mul)
//   conform run <dir>    three-executor differential replay of a corpus
//   stats                session + store counters (deterministic: no clocks)
//   quit                 exit cleanly (EOF does too)
//
// Each request's response is exactly the bytes the one-shot CLI command
// would print to stdout — the renderers below are the SAME code both paths
// call — followed by one terminator line: `ok <verb>` on success or
// `err <detail>` on failure. The stream is flushed after every request.
// Timings, engine config, and store summaries go to `err` only, so the
// response stream stays byte-deterministic for any engine / lanes / thread
// count / store temperature.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluate.hpp"
#include "core/session.hpp"
#include "store/artifact_store.hpp"

namespace sbst::serve {

/// Request configuration shared by every command a serve loop (or one-shot
/// CLI invocation) runs.
struct ServeOptions {
  fault::SimOptions sim;
  bool session_cache = true;
  bool cpu_stats = false;
  double budget_factor = 8.0;
  std::size_t max_faults = 32;
  /// Fault models evaluate/campaign grade under (--fault-model /
  /// SBST_FAULT_MODEL). The default — stuck-at only — renders the exact
  /// legacy stdout; any other selection adds a Model column. Empty behaves
  /// as {kStuckAt}.
  std::vector<fault::FaultModel> fault_models = {fault::FaultModel::kStuckAt};
};

/// Parses a CLI/protocol cut name (mul div rf mem shifter alu ctrl).
bool parse_cut_name(const std::string& name, core::CutId& out);

/// Parses a comma-separated fault-model list ("stuck-at,transient"; the
/// per-model aliases of fault::parse_fault_model apply). Repeated models
/// collapse to one entry, first occurrence wins the order. Returns false on
/// an empty spec, an empty element, or an unknown name; `out` is then left
/// untouched.
bool parse_fault_model_list(const std::string& spec,
                            std::vector<fault::FaultModel>& out);

/// True for the CUTs the injection campaign can target (alu, shifter, mul).
bool injectable_cut(core::CutId id);

/// Resolved engine/lane/optimization configuration, to `err` only.
void print_engine_config(const fault::SimOptions& sim, std::FILE* err);

/// Per-artifact store counters of `session` (one line, `err` audience).
void print_store_summary(const core::GradingSession& session,
                         const store::ArtifactStore* store, std::FILE* err);

// Command renderers. Byte-for-byte the one-shot CLI commands' stdout when
// given `out` = stdout; serve points them at its response stream. Each
// returns the command's exit status (0 = success).
int render_evaluate(core::GradingSession& session,
                    const fault::SimOptions& sim, bool cpu_stats,
                    std::FILE* out, std::FILE* err,
                    const std::vector<fault::FaultModel>& fault_models = {});
int render_campaign(core::GradingSession& session,
                    const fault::SimOptions& sim, std::size_t max_faults,
                    const std::vector<core::CutId>& cuts, std::FILE* out,
                    std::FILE* err,
                    const std::vector<fault::FaultModel>& fault_models = {});
int render_conform_run(core::GradingSession& session, const char* dir,
                       std::FILE* out, std::FILE* err);

/// The `stats` verb: session build/hit counters and store counters. Purely
/// counter-valued (no wall-clock), so repeated identical request sequences
/// produce identical output.
void render_stats(const core::GradingSession& session,
                  const store::ArtifactStore* store, std::FILE* out);

/// Runs the serve loop until `quit` or EOF on `in`. Returns the process
/// exit status.
int run_serve(const core::ProcessorModel& model, const ServeOptions& options,
              std::shared_ptr<store::ArtifactStore> store, std::FILE* in,
              std::FILE* out, std::FILE* err);

}  // namespace sbst::serve
