// `sbst serve`: a warm, long-running campaign daemon over one shared
// GradingSession, plus the renderers it shares with the one-shot CLI.
//
// The one-shot CLI pays the full artifact cost (collapse, compile, decode,
// good run) on every invocation — the persistent store removes the rebuild
// cost but not the process-startup or deserialization cost. serve keeps one
// GradingSession alive across requests instead, so the second and every
// later request starts fully warm, and layers the store underneath for
// warm-across-process restarts.
//
// Protocol: deterministic line-oriented request/response on (in, out).
// One request per line, tokens separated by spaces:
//
//   ping                 liveness probe
//   evaluate             run + fault-grade the full SBST program
//   campaign [<cut>...]  guarded injection campaign (default alu shifter mul)
//   conform run <dir>    three-executor differential replay of a corpus
//   stats                session + store counters (deterministic: no clocks)
//   quit                 exit cleanly (EOF does too)
//
// Each request's response is exactly the bytes the one-shot CLI command
// would print to stdout — the renderers below are the SAME code both paths
// call — followed by one terminator line: `ok <verb>` on success or
// `err <detail>` on failure. The stream is flushed after every request.
// Timings, engine config, and store summaries go to `err` only, so the
// response stream stays byte-deterministic for any engine / lanes / thread
// count / store temperature.
// Robustness layer (the hardened daemon):
//
//  * Concurrent request handling (`--serve-threads N`): N workers drain a
//    bounded admission queue; each response is rendered into a per-request
//    buffer and emitted strictly in admission order, so the byte stream is
//    identical to the serial loop for any worker count.
//  * Overload shedding: when the admission queue is full, new work requests
//    are answered immediately with `err overloaded retry-after=<ms>`
//    instead of growing an unbounded backlog.
//  * Per-request deadlines (`--request-deadline`): a RequestBudget turns a
//    runaway request into a structured `err timeout deadline=<ms>ms`
//    response — checked before execution (queue wait counts against the
//    budget) and cooperatively between campaign gradings.
//  * Write-ahead journal (`--journal FILE`, see journal.hpp): work requests
//    are journaled before execution and sealed after their response is
//    flushed; `--replay-journal` re-runs unsealed requests after a crash
//    and re-renders sealed ones to verify the recorded response hashes.
//  * Bounded request lines: anything longer than kMaxRequestLine answers
//    `err request-too-long` and the loop survives.
#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluate.hpp"
#include "core/session.hpp"
#include "serve/journal.hpp"
#include "store/artifact_store.hpp"

namespace sbst::serve {

/// Upper bound on one request line; longer lines are consumed and answered
/// with `err request-too-long` instead of growing an unbounded std::string
/// from a hostile or broken client.
inline constexpr std::size_t kMaxRequestLine = 4096;

/// render_campaign's status when a RequestBudget expired mid-render (the
/// partial response is discarded and replaced by `err timeout ...`).
inline constexpr int kTimeoutStatus = 124;

/// Request configuration shared by every command a serve loop (or one-shot
/// CLI invocation) runs.
struct ServeOptions {
  fault::SimOptions sim;
  bool session_cache = true;
  bool cpu_stats = false;
  double budget_factor = 8.0;
  std::size_t max_faults = 32;
  /// Fault models evaluate/campaign grade under (--fault-model /
  /// SBST_FAULT_MODEL). The default — stuck-at only — renders the exact
  /// legacy stdout; any other selection adds a Model column. Empty behaves
  /// as {kStuckAt}.
  std::vector<fault::FaultModel> fault_models = {fault::FaultModel::kStuckAt};

  /// Request workers for `serve` (--serve-threads). 1 = the classic serial
  /// read→execute→respond loop. N > 1 runs a reader + N workers + an
  /// ordered emitter; response bytes stay identical to the serial loop.
  unsigned serve_threads = 1;
  /// Bounded admission queue (--serve-queue): work requests waiting for a
  /// worker beyond this depth shed with `err overloaded retry-after=<ms>`.
  /// Only the concurrent loop sheds — the serial loop reads one request at
  /// a time, which is its own bound.
  std::size_t queue_depth = 16;
  /// Per-request wall-clock deadline in milliseconds (--request-deadline).
  /// 0 = unlimited (the default); a positive value applies to every work
  /// request; negative = "auto": each verb's deadline is derived from the
  /// cached wall time of its last completed good run (deadline_factor ×
  /// that, floored at kMinAutoDeadlineMs), mirroring the campaign
  /// watchdog's k × good-run budget at the request level. The first run of
  /// a verb is unlimited (nothing cached yet).
  double request_deadline_ms = 0;
  /// Multiplier for auto deadlines (k in k × cached good wall time).
  double deadline_factor = 8.0;
  /// Write-ahead journal file (--journal). Empty = unjournaled. Open
  /// failures degrade to an unjournaled daemon with one stderr warning.
  std::string journal_path;
  /// Replay the journal before serving (--replay-journal): unsealed
  /// requests re-run and emit their responses (crash recovery); sealed
  /// requests re-render and verify the recorded response hash.
  bool replay_journal = false;
};

/// Floor for auto-derived deadlines (a verb measured at ~0 ms must not get
/// an impossible budget).
inline constexpr double kMinAutoDeadlineMs = 50.0;

/// Wall-clock budget of one request — PR 5's watchdog design lifted to the
/// request level. `ms <= 0` means unlimited.
struct RequestBudget {
  std::chrono::steady_clock::time_point deadline{};
  double ms = 0;

  bool limited() const { return ms > 0; }
  bool expired() const {
    return limited() && std::chrono::steady_clock::now() >= deadline;
  }
};

/// Parses a CLI/protocol cut name (mul div rf mem shifter alu ctrl).
bool parse_cut_name(const std::string& name, core::CutId& out);

/// Parses a comma-separated fault-model list ("stuck-at,transient"; the
/// per-model aliases of fault::parse_fault_model apply). Repeated models
/// collapse to one entry, first occurrence wins the order. Returns false on
/// an empty spec, an empty element, or an unknown name; `out` is then left
/// untouched.
bool parse_fault_model_list(const std::string& spec,
                            std::vector<fault::FaultModel>& out);

/// True for the CUTs the injection campaign can target (alu, shifter, mul).
bool injectable_cut(core::CutId id);

/// Resolved engine/lane/optimization configuration, to `err` only.
void print_engine_config(const fault::SimOptions& sim, std::FILE* err);

/// Per-artifact store counters of `session` (one line, `err` audience).
void print_store_summary(const core::GradingSession& session,
                         const store::ArtifactStore* store, std::FILE* err);

// Command renderers. Byte-for-byte the one-shot CLI commands' stdout when
// given `out` = stdout; serve points them at its response stream. Each
// returns the command's exit status (0 = success).
int render_evaluate(core::GradingSession& session,
                    const fault::SimOptions& sim, bool cpu_stats,
                    std::FILE* out, std::FILE* err,
                    const std::vector<fault::FaultModel>& fault_models = {});
int render_campaign(core::GradingSession& session,
                    const fault::SimOptions& sim, std::size_t max_faults,
                    const std::vector<core::CutId>& cuts, std::FILE* out,
                    std::FILE* err,
                    const std::vector<fault::FaultModel>& fault_models = {},
                    const RequestBudget* budget = nullptr);
int render_conform_run(core::GradingSession& session, const char* dir,
                       std::FILE* out, std::FILE* err);

/// The `stats` verb: session build/hit counters, store counters, and — when
/// the daemon is journaled — journal totals. Purely counter-valued (no
/// wall-clock), so repeated identical request sequences produce identical
/// output.
void render_stats(const core::GradingSession& session,
                  const store::ArtifactStore* store, std::FILE* out,
                  const Journal* journal = nullptr);

/// Runs the serve loop until `quit` or EOF on `in`. Returns the process
/// exit status.
int run_serve(const core::ProcessorModel& model, const ServeOptions& options,
              std::shared_ptr<store::ArtifactStore> store, std::FILE* in,
              std::FILE* out, std::FILE* err);

}  // namespace sbst::serve
