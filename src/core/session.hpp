// Grading sessions: per-model caches of fault-grading artifacts plus one
// persistent worker pool.
//
// Every fault grading of a component needs the same derived artifacts —
// the collapsed fault universe, the compiled netlist, the observe set for
// the requested observability mode, and the observe-cone reach prefilter.
// Before this layer each evaluate_program / bench / CLI call rebuilt all of
// them per call, and every simulate_*_parallel invocation spun up a fresh
// ThreadPool. A GradingSession amortizes both: artifacts are built lazily
// on first use and cached per (component, mode), and one pool lives for the
// session's lifetime and schedules whole-CUT gradings as interleaved chunk
// tasks (see fault::GradingPlan).
//
// Caching never changes results: artifacts are pure functions of the model
// and the mode, so ProgramEvaluation output is bitwise-identical with the
// cache on or off (enforced by tests/test_session.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "core/program.hpp"
#include "fault/fault.hpp"
#include "fault/pattern.hpp"
#include "fault/sim.hpp"
#include "fault/thread_pool.hpp"
#include "netlist/compiled.hpp"
#include "sim/cpu.hpp"
#include "store/artifact_store.hpp"

namespace sbst::core {

/// The observability axes of EvalOptions that change observe sets (and
/// therefore reach cones); each mode gets its own cache slot.
enum class ObserveMode : std::uint8_t {
  kArchitectural = 0,             // paper-faithful propagatable outputs
  kArchitecturalPlusAddress = 1,  // + the A-VC MAR outputs (ablation)
  kFullNetlist = 2,               // every declared output net
};
inline constexpr std::size_t kObserveModes = 3;

/// Observation points for a component under a mode (the paper's
/// architectural-observability rules live here).
fault::ObserveSet observation_points(const ComponentInfo& info,
                                     ObserveMode mode);

struct SessionOptions {
  /// Worker threads for the session pool (including the calling thread).
  /// 0 = auto: SBST_THREADS env var, else hardware concurrency.
  unsigned num_threads = 0;
  /// Cache artifacts across gradings. Off rebuilds each artifact on every
  /// request — same results, only slower (the differential-testing knob).
  bool cache = true;
  /// Lane-block width in words for the compiled engines (0 =
  /// fault::default_lanes()). Part of the grading configuration handed to
  /// every simulation this session drives; detection results are identical
  /// for every width.
  unsigned lanes = 0;
  /// Netlist-compile optimization passes for compiled netlists built by this
  /// session: 1 = on, 0 = off, -1 = fault::default_netlist_opt(). Keyed into
  /// the compiled-netlist cache, so sessions with different settings never
  /// alias.
  int netlist_opt = -1;
  /// Default watchdog budget factor for injection campaigns run through
  /// this session: faulty runs get budget_factor × the good machine's
  /// instructions / cycles / stores before the watchdog classifies them as
  /// hung. <= 0 disables the watchdog (legacy 1<<24 instruction cap). Per
  /// call overridable via InjectOptions::budget_factor.
  double budget_factor = 8.0;
  /// Persistent artifact store. When set, every lazy cache slot probes the
  /// store before building (a hit skips the build entirely) and writes the
  /// freshly built image back after. Results are bitwise-identical with the
  /// store on, off, cold, or warm — the store only moves work, never
  /// answers. nullptr = in-memory caching only (the default; tests and CI
  /// stay hermetic).
  std::shared_ptr<store::ArtifactStore> store;
};

/// Build/hit counters per artifact kind; a cache-warm second grading of the
/// same component must increase only the hit counts. `*_builds` counts
/// from-scratch constructions only — an artifact loaded from the persistent
/// store increments `store_hits` instead, which is how a warm-store run
/// proves it skipped the rebuild.
struct SessionStats {
  std::size_t universe_builds = 0, universe_hits = 0;
  std::size_t compile_builds = 0, compile_hits = 0;
  std::size_t observe_builds = 0, observe_hits = 0;
  std::size_t cone_builds = 0, cone_hits = 0;
  std::size_t decode_builds = 0, decode_hits = 0;
  std::size_t goodrun_builds = 0, goodrun_hits = 0;
  std::size_t patterns_builds = 0, patterns_hits = 0;
  /// Persistent-store probe outcomes, counted per artifact request:
  /// store_loads = store_hits + store_misses + store_invalid. `store_invalid`
  /// counts payloads the store served but the artifact codec rejected (the
  /// store's own StoreStats counts file-level corruption separately).
  std::size_t store_loads = 0, store_hits = 0, store_misses = 0;
  std::size_t store_invalid = 0, store_writes = 0;
};

/// Fault-free reference execution of a test program: the stats of the run
/// and the unloaded signature words every injected fault is compared
/// against.
struct GoodRun {
  sim::ExecStats stats;
  std::vector<std::uint32_t> signatures;
};

class GradingSession {
 public:
  explicit GradingSession(const ProcessorModel& model,
                          const SessionOptions& options = {});

  const ProcessorModel& model() const { return *model_; }
  const SessionOptions& options() const { return options_; }

  /// The session's persistent worker pool. Not reentrant: a task running on
  /// the pool must not submit to it.
  fault::ThreadPool& pool() { return pool_; }

  /// Resolved lane-block width for gradings driven by this session.
  unsigned lanes() const;
  /// Resolved compile options for compiled netlists built by this session
  /// (all passes on, or none, per SessionOptions::netlist_opt).
  netlist::CompileOptions compile_options() const;

  /// Collapsed stuck-at fault universe of a component.
  const fault::FaultUniverse& universe(CutId id);
  /// Collapsed fault universe of a component under an explicit fault model.
  /// Each model gets its own cache / store slot (the model is an axis of the
  /// artifact key), so mixed-model sessions never alias universes.
  const fault::FaultUniverse& universe(CutId id, fault::FaultModel model);
  /// Compiled netlist of a component under the session's compile options
  /// (shared read-only across workers).
  const netlist::CompiledNetlist& compiled(CutId id);
  /// Compiled netlist of a component under explicit compile options. The
  /// cache is keyed by (component, options), so differently-optimized
  /// programs never alias.
  const netlist::CompiledNetlist& compiled(CutId id,
                                           const netlist::CompileOptions& opts);
  /// Observe set of a component under a mode.
  const fault::ObserveSet& observe(CutId id, ObserveMode mode);
  /// Fanin-cone reach prefilter of the mode's observe set, indexed per gate.
  /// Derives from compiled() and observe() and (re)builds them as needed, so
  /// with the cache off fetch the cone BEFORE taking references to those.
  const std::vector<std::uint8_t>& cone(CutId id, ObserveMode mode);

  /// Predecoded micro-op image of a program, content-addressed over
  /// (base, words). Shared read-only across concurrently-running CPUs —
  /// Cpu clones before patching, so one handout serves any number of
  /// parallel faulty runs.
  std::shared_ptr<const isa::DecodedProgram> decoded(const isa::Program& image);

  /// Fault-free reference run of `program` under `config`, executed once
  /// per distinct (image, entry, signature layout, config) and cached.
  /// Returned reference follows the same cache-off invalidation caveat as
  /// the other accessors; copy it before fanning out faulty runs.
  const GoodRun& good_run(const TestProgram& program,
                          const sim::CpuConfig& config = {});

  /// Named pattern set for a component, built by `build` on a cold miss.
  /// `tag` names the generator (e.g. "atpg-podem") and is part of the key,
  /// so differently-generated sets for the same component never alias. The
  /// builder must be deterministic for the tag — the store hands back a
  /// previous process's build verbatim. It runs with the session unlocked,
  /// so it may freely call the other accessors (compiled(), universe(), …).
  const fault::PatternSet& patterns(
      CutId id, const std::string& tag,
      const std::function<fault::PatternSet(const netlist::Netlist&)>& build);

  SessionStats stats() const;

  // Accessors are thread-safe; with the cache ON, returned references stay
  // valid for the session's lifetime. With the cache OFF a later request
  // for the SAME (component, artifact, mode) slot replaces the object, so
  // plan all artifact fetches before fanning work out (evaluate_program
  // does).

 private:
  // One slot per canonical ArtifactKey; at most one member is non-null
  // (which one is determined by the key's kind). A std::map keyed by the
  // full ArtifactKey replaces the old per-kind parallel containers
  // (component-indexed vector + per-slot options scan + mode arrays):
  // node stability keeps handed-out references valid as the map grows, and
  // the in-memory key is the exact struct the store serializes, so memory
  // and disk can never disagree about an artifact's identity.
  struct ArtifactSlot {
    std::unique_ptr<fault::FaultUniverse> universe;
    std::unique_ptr<netlist::CompiledNetlist> compiled;
    std::unique_ptr<fault::ObserveSet> observe;
    std::unique_ptr<std::vector<std::uint8_t>> cone;
    std::unique_ptr<fault::PatternSet> patterns;
  };

  // Program-level caches are content-addressed: a fast 64-bit hash narrows
  // the scan, then the full key (image words + run parameters) is compared,
  // so a hash collision can never alias two different programs.
  struct DecodedEntry {
    std::uint64_t hash = 0;
    std::uint32_t base = 0;
    std::vector<std::uint32_t> words;
    std::shared_ptr<const isa::DecodedProgram> decoded;
  };
  struct GoodRunEntry {
    std::uint64_t hash = 0;
    std::uint32_t base = 0;
    std::uint32_t entry = 0;
    std::uint32_t signature_base = 0;
    std::vector<std::uint32_t> words;
    sim::CpuConfig config;
    GoodRun run;
  };

  const netlist::CompiledNetlist& compiled_locked(
      CutId id, const netlist::CompileOptions& opts);
  const fault::ObserveSet& observe_locked(CutId id, ObserveMode mode);
  std::shared_ptr<const isa::DecodedProgram> decoded_locked(
      const isa::Program& image);

  // Store plumbing (all called under mutex_). probe_store returns the
  // payload bytes for a key, maintaining the load/miss counters; the caller
  // reports the decode outcome via the hit/invalid counters.
  std::optional<std::vector<std::uint8_t>> probe_store(
      const store::ArtifactKey& key);
  std::optional<std::vector<std::uint8_t>> probe_store(
      const std::string& kind, const std::vector<std::uint8_t>& key_bytes);
  void write_store(const store::ArtifactKey& key,
                   const std::vector<std::uint8_t>& payload);
  void write_store(const std::string& kind,
                   const std::vector<std::uint8_t>& key_bytes,
                   const std::vector<std::uint8_t>& payload);

  const ProcessorModel* model_;
  SessionOptions options_;
  mutable std::mutex mutex_;
  // Canonical artifact cache; see ArtifactSlot. std::map for node stability.
  std::map<store::ArtifactKey, ArtifactSlot> artifacts_;
  // Deques: growth must not invalidate references handed out earlier.
  std::deque<DecodedEntry> decoded_cache_;
  std::deque<GoodRunEntry> goodrun_cache_;
  SessionStats stats_;
  fault::ThreadPool pool_;
};

}  // namespace sbst::core
