// Phase C of the methodology: self-test routine development (paper §3.3).
//
// Each generator turns a TPG product (regular operand family, constrained
// ATPG set, LFSR parameters) into a MIPS assembly routine in one of the
// paper's code styles:
//
//   Figure 1 — "AtpgD/RegD (I)": patterns applied through immediate
//              instructions (li decomposed to lui/ori), straight-line code.
//   Figure 2 — "AtpgD (L)": patterns stored in data memory, fetched by a
//              compact lw loop.
//   Figure 3 — "PR (L)": software-LFSR loop generating pseudorandom
//              operands.
//   Figure 4 — "RegD (L)": loop generating a regular operand family from
//              an initial value, a final value, and a next-pattern step.
//
// All routines compact responses through the paper's shared 8-word software
// MISR subroutine and finally unload one signature word to the signature
// area. Register conventions follow the paper's figures: $s0/$s1 operands,
// $s2 signature, $s7 polynomial, $t8 response, $t9 scratch.
#pragma once

#include <string>
#include <vector>

#include "core/component.hpp"
#include "core/tpg.hpp"

namespace sbst::core {

/// One self-test routine: a self-contained assembly fragment. It assumes
/// the shared MISR subroutines and the `signatures` data area exist in the
/// surrounding program (the TestProgramBuilder provides both, as does
/// standalone_program()).
struct Routine {
  std::string name;       // label prefix, e.g. "alu"
  CutId target;
  TpgStrategy strategy;
  std::string style;      // Table-1 style tag, e.g. "RegD (L + I)"
  std::string assembly;   // routine body (code)
  std::string data_assembly;  // .word test data, placed after the code
  unsigned sig_slot = 0;  // word index in the signature area
  std::size_t pattern_count = 0;
};

struct CodegenOptions {
  std::uint32_t misr_seed = 0xffffffffu;
  std::uint32_t misr_poly = 0x80200003u;  // Lfsr32::kDefaultPoly
  /// Insert nops for a pipeline without forwarding (paper §3.3: "nop
  /// instructions are inserted accordingly when forwarding is not
  /// supported"). Applied by TestProgramBuilder to every routine and to the
  /// MISR subroutines at assembly time.
  bool schedule_for_no_forwarding = false;
  /// LFSR-loop routine iterations (Figure 3 style).
  unsigned lfsr_iterations = 256;
  /// ATPG knobs for the shifter routine. A small random warmup retires the
  /// easy faults before deterministic generation: 8 patterns minimise the
  /// total routine size (0 leaves more work to PODEM, 32+ adds dead code).
  unsigned atpg_backtrack_limit = 20000;
  unsigned atpg_random_warmup = 8;
  std::uint64_t seed = 1;
};

/// Emits the shared MISR subroutines:
///   misr    — paper's 8-word routine on $s2/$s7/$t8/$t9 (high registers)
///   misr_lo — the mirror on $2/$7/$8/$9, used while the high half of the
///             register file is under test
std::string misr_subroutines();

/// Reference model of the signature produced by absorbing `responses` via
/// the misr subroutine (matches common/lfsr.hpp Misr32).
std::uint32_t misr_reference(const std::vector<std::uint32_t>& responses,
                             std::uint32_t seed, std::uint32_t poly);

// ---- per-CUT routine generators (the Table 1 rows) -------------------------

/// ALU: RegD (L + I) — immediate constants + three Figure-4 loops.
Routine make_alu_routine(const CodegenOptions& opts);

/// Shifter: AtpgD (I) — constrained-ATPG patterns through sllv/srlv/srav.
Routine make_shifter_routine(const ProcessorModel& model,
                             const CodegenOptions& opts);

/// Parallel multiplier: RegD (L + I).
Routine make_multiplier_routine(const CodegenOptions& opts);

/// Serial divider: RegD (L + I).
Routine make_divider_routine(const CodegenOptions& opts);

/// Register file: RegD (I), two-phase halves (paper §3.3).
Routine make_regfile_routine(const CodegenOptions& opts);

/// Memory controller: RegD (I) store/load lane sweep.
Routine make_memctrl_routine(const CodegenOptions& opts);

/// Control logic: FT — every supported opcode executed and observed.
Routine make_control_routine(const CodegenOptions& opts);

/// A-VC address routine (deliberately NOT part of the default periodic
/// program, paper §3.2): distributed sw/lw at walking-bit addresses to
/// exercise the memory-address register. Improves memory-controller
/// coverage at the price of cache-hostile distributed references — the
/// trade-off the paper cites for deferring A-VCs. `addr_bits` is the
/// highest address bit swept (the CPU must own 2^(addr_bits+1) bytes).
Routine make_avc_address_routine(const CodegenOptions& opts,
                                 unsigned addr_bits = 19);

// ---- code-style studies (Figures 1-4 on a common CUT) -----------------------

/// Response-compaction choice for the immediate code style: the paper's
/// 8-word software MISR subroutine, or a 1-word inline XOR accumulate
/// (cheaper, but order-insensitive and alias-prone — the ablation
/// bench/compaction_ablation quantifies the difference).
enum class Compaction { kMisr, kXorAccumulate };

/// Figure 1: n ALU patterns as immediate instructions.
Routine make_fig1_immediate_routine(const std::vector<AluOpnd>& tests,
                                    const CodegenOptions& opts,
                                    Compaction compaction = Compaction::kMisr);
/// Figure 2: the same patterns stored in memory, applied by a fetch loop.
Routine make_fig2_datafetch_routine(const std::vector<AluOpnd>& tests,
                                    rtlgen::AluOp op,
                                    const CodegenOptions& opts);
/// Figure 3: software-LFSR loop applying `iterations` pseudorandom pairs
/// to one ALU operation.
Routine make_fig3_lfsr_routine(rtlgen::AluOp op, std::uint32_t seed_x,
                               std::uint32_t seed_y, unsigned iterations,
                               const CodegenOptions& opts);
/// Figure 4: regular deterministic loop (walking-one family) for one op.
Routine make_fig4_regular_routine(rtlgen::AluOp op,
                                  const CodegenOptions& opts);

}  // namespace sbst::core
