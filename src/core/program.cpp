#include "core/program.hpp"

#include <stdexcept>

#include "core/schedule.hpp"

namespace sbst::core {

TestProgramBuilder& TestProgramBuilder::add(Routine routine) {
  for (const Routine& existing : routines_) {
    if (existing.name == routine.name) {
      throw std::invalid_argument("duplicate routine name " + routine.name);
    }
    if (existing.sig_slot == routine.sig_slot) {
      throw std::invalid_argument("signature slot clash for " + routine.name);
    }
  }
  routines_.push_back(std::move(routine));
  return *this;
}

TestProgramBuilder& TestProgramBuilder::add_default_routines(
    const ProcessorModel& model) {
  add(make_multiplier_routine(opts_));
  add(make_divider_routine(opts_));
  add(make_regfile_routine(opts_));
  add(make_memctrl_routine(opts_));
  add(make_shifter_routine(model, opts_));
  add(make_alu_routine(opts_));
  add(make_control_routine(opts_));
  return *this;
}

namespace {

isa::Program assemble_with_runtime(const std::vector<Routine>& routines,
                                   std::uint32_t base, bool schedule_nops) {
  auto body = [&](const std::string& assembly) {
    return schedule_nops
               ? insert_nops_for_no_forwarding(assembly).assembly
               : assembly;
  };
  std::string text;
  text += "start:\n";
  for (const Routine& r : routines) {
    text += "sec_" + r.name + "_begin:\n";
    text += body(r.assembly);
    text += "sec_" + r.name + "_end:\n";
  }
  text += "  break\n";
  text += body(misr_subroutines());
  text += "signatures:\n  .word 0, 0, 0, 0, 0, 0, 0, 0\n";
  for (const Routine& r : routines) {
    text += r.data_assembly;
  }
  return isa::assemble(text, base);
}

}  // namespace

TestProgram TestProgramBuilder::build(std::uint32_t base) const {
  if (routines_.empty()) {
    throw std::logic_error("TestProgramBuilder: no routines added");
  }
  TestProgram out;
  out.routines = routines_;
  out.image = assemble_with_runtime(routines_, base,
                                    opts_.schedule_for_no_forwarding);
  out.entry = out.image.symbol("start");
  out.signature_base = out.image.symbol("signatures");
  for (const Routine& r : routines_) {
    out.sections.push_back({out.image.symbol("sec_" + r.name + "_begin"),
                            out.image.symbol("sec_" + r.name + "_end")});
  }
  return out;
}

TestProgram TestProgramBuilder::build_standalone(const Routine& routine,
                                                 std::uint32_t base) const {
  TestProgram out;
  out.routines = {routine};
  out.image = assemble_with_runtime({routine}, base,
                                    opts_.schedule_for_no_forwarding);
  out.entry = out.image.symbol("start");
  out.signature_base = out.image.symbol("signatures");
  out.sections.push_back({out.image.symbol("sec_" + routine.name + "_begin"),
                          out.image.symbol("sec_" + routine.name + "_end")});
  return out;
}

}  // namespace sbst::core
