#include "core/codegen.hpp"

#include <array>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "atpg/testgen.hpp"
#include "common/bits.hpp"
#include "common/lfsr.hpp"
#include "fault/fault.hpp"
#include "rtlgen/control.hpp"

namespace sbst::core {

using rtlgen::AluOp;
using rtlgen::ShiftOp;

namespace {

std::string hex(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

/// Assembly text builder with printf-style lines.
class Asm {
 public:
  void line(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    char buf[256];
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    out_ += "  ";
    out_ += buf;
    out_ += '\n';
  }
  void label(const std::string& name) { out_ += name + ":\n"; }
  void comment(const std::string& text) { out_ += "  # " + text + "\n"; }
  void raw(const std::string& text) { out_ += text; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

const char* alu_mnemonic(AluOp op) {
  switch (op) {
    case AluOp::kAnd: return "and";
    case AluOp::kOr: return "or";
    case AluOp::kXor: return "xor";
    case AluOp::kNor: return "nor";
    case AluOp::kAdd: return "addu";
    case AluOp::kSub: return "subu";
    case AluOp::kSlt: return "slt";
    case AluOp::kSltu: return "sltu";
  }
  return "?";
}

const char* shiftv_mnemonic(ShiftOp op) {
  switch (op) {
    case ShiftOp::kSll: return "sllv";
    case ShiftOp::kSrl: return "srlv";
    case ShiftOp::kSra: return "srav";
  }
  return "?";
}

/// Manages a pool of scratch registers preloaded with constants, so each
/// straight-line pattern costs two words (jal + operation in the delay
/// slot) instead of up to six.
class ConstPool {
 public:
  explicit ConstPool(Asm& as) : as_(&as) {
    // $zero serves constant 0 for free.
    values_[0] = "$zero";
  }

  /// Returns a register holding `value`, preloading it on first use.
  std::string reg(std::uint32_t value) {
    auto it = values_.find(value);
    if (it != values_.end()) return it->second;
    if (next_ >= kPool.size()) {
      throw std::logic_error("ConstPool: out of scratch registers");
    }
    const std::string r = kPool[next_++];
    as_->line("li   %s, %s", r.c_str(), hex(value).c_str());
    values_[value] = r;
    return r;
  }

 private:
  static constexpr std::array<const char*, 14> kPool = {
      "$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
      "$a0", "$a1", "$a2", "$a3", "$v0", "$v1"};
  Asm* as_;
  std::size_t next_ = 0;
  std::map<std::uint32_t, std::string> values_;
};

void emit_seed(Asm& as, const CodegenOptions& opts) {
  as.line("li   $s7, %s", hex(opts.misr_poly).c_str());
  as.line("li   $s2, %s", hex(opts.misr_seed).c_str());
}

void emit_unload(Asm& as, unsigned slot) {
  as.line("la   $s6, signatures");
  as.line("sw   $s2, %u($s6)", slot * 4);
}

/// jal misr with `apply` in the branch delay slot — the canonical two-word
/// apply-and-compact step used throughout the routines.
void emit_absorb(Asm& as, const std::string& apply) {
  as.line("jal  misr");
  as.line("%s", apply.c_str());
}

}  // namespace

std::string misr_subroutines() {
  Asm as;
  as.comment("shared software MISR (8 words): absorbs $t8 into $s2, poly $s7");
  as.label("misr");
  as.line("andi $t9, $s2, 1");
  as.line("srl  $s2, $s2, 1");
  as.line("beq  $t9, $zero, misr_skip");
  as.line("nop");
  as.line("xor  $s2, $s2, $s7");
  as.label("misr_skip");
  as.line("xor  $s2, $s2, $t8");
  as.line("jr   $ra");
  as.line("nop");
  as.comment("mirror MISR on low registers ($2 sig, $7 poly, $8 resp, $9 scratch)");
  as.label("misr_lo");
  as.line("andi $9, $2, 1");
  as.line("srl  $2, $2, 1");
  as.line("beq  $9, $zero, misr_lo_skip");
  as.line("nop");
  as.line("xor  $2, $2, $7");
  as.label("misr_lo_skip");
  as.line("xor  $2, $2, $8");
  as.line("jr   $ra");
  as.line("nop");
  return as.take();
}

std::uint32_t misr_reference(const std::vector<std::uint32_t>& responses,
                             std::uint32_t seed, std::uint32_t poly) {
  Misr32 misr(seed, poly);
  for (std::uint32_t r : responses) misr.absorb(r);
  return misr.signature();
}

// ---------------------------------------------------------------- ALU ------

Routine make_alu_routine(const CodegenOptions& opts) {
  Asm as;
  as.comment("ALU self-test: RegD (L + I)");
  emit_seed(as, opts);
  ConstPool pool(as);

  const auto tests = regular_alu_tests(32);
  const std::size_t n_linear = 6u * 32;  // trailing loop families
  const std::size_t n_const = tests.size() - n_linear;

  for (std::size_t i = 0; i < n_const; ++i) {
    const AluOpnd& t = tests[i];
    const std::string ra = pool.reg(t.a);
    const std::string rb = pool.reg(t.b);
    emit_absorb(as, std::string(alu_mnemonic(t.op)) + " $t8, " + ra + ", " +
                        rb);
  }

  // Figure-4 loops for the linear families.
  const std::string ones = pool.reg(0xffffffffu);
  as.comment("carry generate per bit: add(1<<i, 1<<i)");
  as.line("li   $s0, 1");
  as.label("alu_gen");
  emit_absorb(as, "addu $t8, $s0, $s0");
  as.line("sll  $s0, $s0, 1");
  as.line("bne  $s0, $zero, alu_gen");
  as.line("nop");
  as.comment("carry propagate: add(ones, 1<<i)");
  as.line("li   $s0, 1");
  as.label("alu_prop");
  emit_absorb(as, "addu $t8, " + ones + ", $s0");
  as.line("sll  $s0, $s0, 1");
  as.line("bne  $s0, $zero, alu_prop");
  as.line("nop");
  as.comment("borrow through each bit: sub(0, 1<<i)");
  as.line("li   $s0, 1");
  as.label("alu_borrow");
  emit_absorb(as, "subu $t8, $zero, $s0");
  as.line("sll  $s0, $s0, 1");
  as.line("bne  $s0, $zero, alu_borrow");
  as.line("nop");
  as.comment("carry chain of every prefix length: add(low_mask(i+1), 1)");
  const std::string one = pool.reg(1u);
  as.line("li   $s0, 1");
  as.label("alu_chain");
  emit_absorb(as, "addu $t8, $s0, " + one);
  as.line("sll  $s0, $s0, 1");
  as.line("ori  $s0, $s0, 1");
  as.line("bne  $s0, %s, alu_chain", ones.c_str());
  as.line("nop");
  as.comment("carry chain with one kill: add(ones ^ (1<<i), 1)");
  as.line("li   $s1, 1");
  as.label("alu_hole");
  as.line("xor  $s0, %s, $s1", ones.c_str());
  emit_absorb(as, "addu $t8, $s0, " + one);
  as.line("sll  $s1, $s1, 1");
  as.line("bne  $s1, $zero, alu_hole");
  as.line("nop");
  as.comment("generate at i, propagate above: add(-(1<<i), 1<<i)");
  as.line("li   $s1, 1");
  as.label("alu_genprop");
  as.line("subu $s0, $zero, $s1");
  emit_absorb(as, "addu $t8, $s0, $s1");
  as.line("sll  $s1, $s1, 1");
  as.line("bne  $s1, $zero, alu_genprop");
  as.line("nop");

  emit_unload(as, 5);
  return {.name = "alu",
          .target = CutId::kAlu,
          .strategy = TpgStrategy::kRegularDeterministic,
          .style = "RegD (L + I)",
          .assembly = as.take(),
          .sig_slot = 5,
          .pattern_count = tests.size()};
}

// ------------------------------------------------------------- shifter -----

Routine make_shifter_routine(const ProcessorModel& model,
                             const CodegenOptions& opts) {
  const netlist::Netlist& nl = model.component(CutId::kShifter).netlist;
  fault::FaultUniverse universe(nl);

  Asm as;
  as.comment("Shifter self-test: AtpgD (I), constrained ATPG per shift op");
  emit_seed(as, opts);

  std::vector<fault::Fault> remaining = universe.collapsed();
  std::size_t patterns = 0;
  for (ShiftOp op : {ShiftOp::kSll, ShiftOp::kSrl, ShiftOp::kSra}) {
    atpg::InputConstraints cons;
    cons.fix_port(nl, "op", static_cast<std::uint64_t>(op));
    atpg::TestGenOptions tg;
    tg.podem.backtrack_limit = opts.atpg_backtrack_limit;
    tg.random_warmup = opts.atpg_random_warmup;
    tg.seed = opts.seed + static_cast<std::uint64_t>(op);
    const atpg::TestGenResult res =
        atpg::generate_atpg_tests(nl, remaining, cons, tg);

    as.comment(std::string("patterns via ") + shiftv_mnemonic(op));
    for (std::size_t i = 0; i < res.patterns.size(); ++i) {
      const std::uint32_t value =
          static_cast<std::uint32_t>(res.patterns.value_of(i, "a"));
      const std::uint32_t shamt =
          static_cast<std::uint32_t>(res.patterns.value_of(i, "shamt"));
      as.line("li   $s0, %s", hex(value).c_str());
      as.line("li   $s1, %u", shamt);
      emit_absorb(as,
                  std::string(shiftv_mnemonic(op)) + " $t8, $s0, $s1");
      ++patterns;
    }
    // Only faults this op's set left undetected go to the next op.
    std::vector<fault::Fault> next;
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      if (!res.coverage.detected_flags[i]) next.push_back(remaining[i]);
    }
    remaining = std::move(next);
    if (remaining.empty()) break;
  }

  emit_unload(as, 4);
  return {.name = "shifter",
          .target = CutId::kShifter,
          .strategy = TpgStrategy::kAtpgDeterministic,
          .style = "AtpgD (I)",
          .assembly = as.take(),
          .sig_slot = 4,
          .pattern_count = patterns};
}

// ---------------------------------------------------------- multiplier -----

Routine make_multiplier_routine(const CodegenOptions& opts) {
  Asm as;
  as.comment("Parallel multiplier self-test: RegD (L + I)");
  emit_seed(as, opts);
  ConstPool pool(as);
  const std::string ones = pool.reg(0xffffffffu);

  auto absorb_hilo = [&](const std::string& start) {
    as.line("%s", start.c_str());
    emit_absorb(as, "mflo $t8");
    emit_absorb(as, "mfhi $t8");
  };

  as.comment("one partial-product row at a time: mult(1<<i, ones)");
  as.line("li   $s0, 1");
  as.label("mul_row");
  absorb_hilo("multu $s0, " + ones);
  as.line("sll  $s0, $s0, 1");
  as.line("bne  $s0, $zero, mul_row");
  as.line("nop");

  as.comment("one column at a time: mult(ones, 1<<i)");
  as.line("li   $s0, 1");
  as.label("mul_col");
  absorb_hilo("multu " + ones + ", $s0");
  as.line("sll  $s0, $s0, 1");
  as.line("bne  $s0, $zero, mul_col");
  as.line("nop");

  as.comment("diagonal: mult(1<<i, 1<<i)");
  as.line("li   $s0, 1");
  as.label("mul_diag");
  absorb_hilo("multu $s0, $s0");
  as.line("sll  $s0, $s0, 1");
  as.line("bne  $s0, $zero, mul_diag");
  as.line("nop");

  const auto tests = regular_multiplier_tests(32);
  as.comment("constant corner patterns");
  for (std::size_t i = 3u * 32; i < tests.size(); ++i) {
    const MulOpnd& t = tests[i];
    absorb_hilo("multu " + pool.reg(t.a) + ", " + pool.reg(t.b));
  }

  // The array's leftover faults are not random-resistant, just operand-
  // diverse: a short Figure-3 pseudorandom loop mops them up (strategy
  // mixing per the paper's applicability discussion).
  as.comment("pseudorandom mop-up loop (software LFSR)");
  as.line("li   $s0, 0x1d872b41");
  as.line("li   $s1, 0x9e3779b9");
  as.line("li   $s5, %u", opts.lfsr_iterations / 2);
  as.line("add  $s4, $zero, $zero");
  as.label("mul_pr");
  as.line("andi $t9, $s0, 1");
  as.line("srl  $s0, $s0, 1");
  as.line("beq  $t9, $zero, mul_prx");
  as.line("nop");
  as.line("xor  $s0, $s0, $s7");
  as.label("mul_prx");
  as.line("andi $t9, $s1, 1");
  as.line("srl  $s1, $s1, 1");
  as.line("beq  $t9, $zero, mul_pry");
  as.line("nop");
  as.line("xor  $s1, $s1, $s7");
  as.label("mul_pry");
  as.line("addiu $s4, $s4, 1");
  absorb_hilo("multu $s0, $s1");
  as.line("bne  $s5, $s4, mul_pr");
  as.line("nop");

  emit_unload(as, 0);
  return {.name = "mul",
          .target = CutId::kMultiplier,
          .strategy = TpgStrategy::kRegularDeterministic,
          .style = "RegD (L+I) + PR",
          .assembly = as.take(),
          .sig_slot = 0,
          .pattern_count = tests.size() + opts.lfsr_iterations / 2};
}

// -------------------------------------------------------------- divider ----

Routine make_divider_routine(const CodegenOptions& opts) {
  Asm as;
  as.comment("Serial divider self-test: RegD (L + I)");
  emit_seed(as, opts);
  ConstPool pool(as);
  const std::string ones = pool.reg(0xffffffffu);
  const std::string one = pool.reg(1u);

  auto absorb_qr = [&](const std::string& start) {
    as.line("%s", start.c_str());
    emit_absorb(as, "mflo $t8");  // quotient
    emit_absorb(as, "mfhi $t8");  // remainder
  };

  as.comment("walking dividend: divu(1<<i, 1)");
  as.line("li   $s0, 1");
  as.label("div_wd");
  absorb_qr("divu $s0, " + one);
  as.line("sll  $s0, $s0, 1");
  as.line("bne  $s0, $zero, div_wd");
  as.line("nop");

  as.comment("walking divisor: divu(ones, 1<<i)");
  as.line("li   $s0, 1");
  as.label("div_wv");
  absorb_qr("divu " + ones + ", $s0");
  as.line("sll  $s0, $s0, 1");
  as.line("bne  $s0, $zero, div_wv");
  as.line("nop");

  as.comment("walking remainder: divu(low_mask(i+1), ones)");
  as.line("li   $s0, 1");
  as.label("div_wr");
  absorb_qr("divu $s0, " + ones);
  as.line("sll  $s0, $s0, 1");
  as.line("ori  $s0, $s0, 1");
  as.line("bne  $s0, %s, div_wr", ones.c_str());
  as.line("nop");

  const auto tests = regular_divider_tests(32);
  const std::size_t n_linear = 1u + 3u * 32;  // all-ones + walks
  as.comment("constant corner patterns");
  for (std::size_t i = n_linear; i < tests.size(); ++i) {
    const DivOpnd& t = tests[i];
    absorb_qr("divu " + pool.reg(t.dividend) + ", " + pool.reg(t.divisor));
  }

  emit_unload(as, 1);
  return {.name = "div",
          .target = CutId::kDivider,
          .strategy = TpgStrategy::kRegularDeterministic,
          .style = "RegD (L + I)",
          .assembly = as.take(),
          .sig_slot = 1,
          .pattern_count = tests.size()};
}

// -------------------------------------------------------- register file ----

Routine make_regfile_routine(const CodegenOptions& opts) {
  Asm as;
  as.comment("Register file self-test: RegD (I), two phases (paper 3.3)");
  as.comment("phase 1: low half $1..$15 under test, MISR in high registers");
  emit_seed(as, opts);

  unsigned label_counter = 0;
  auto inline_absorb_lo = [&](unsigned reg) {
    // Inline MISR on low registers: sig $2, poly $7, scratch $9.
    const std::string skip =
        "rf_sk" + std::to_string(label_counter++);
    as.line("andi $9, $2, 1");
    as.line("srl  $2, $2, 1");
    as.line("beq  $9, $zero, %s", skip.c_str());
    as.line("nop");
    as.line("xor  $2, $2, $7");
    as.label(skip);
    as.line("xor  $2, $2, $%u", reg);
  };
  auto hash = [](unsigned r) { return 0x9e3779b9u * r + 0x01010101u; };

  // ---- phase 1: test $1..$15 ----------------------------------------------
  // Checkerboard alternating across registers: neighbouring registers hold
  // complementary data, so every paired read drives both read-port mux
  // trees with distinguishable values; the second pass complements, giving
  // each cell both polarities.
  for (unsigned pass = 0; pass < 2; ++pass) {
    for (unsigned r = 1; r <= 15; ++r) {
      const std::uint32_t data =
          ((r & 1u) != 0) == (pass == 0) ? 0x55555555u : 0xaaaaaaaau;
      as.line("li   $%u, %s", r, hex(data).c_str());
    }
    for (unsigned r = 1; r <= 15; ++r) {
      const unsigned other = r == 15 ? 1 : r + 1;
      emit_absorb(as, pass == 0
                          ? "addu $t8, $" + std::to_string(r) + ", $" +
                                std::to_string(other)
                          : "addu $t8, $" + std::to_string(other) + ", $" +
                                std::to_string(r));
    }
  }
  as.comment("unique value per register: exposes write-decoder aliasing");
  for (unsigned r = 1; r <= 15; ++r) {
    as.line("li   $%u, %s", r, hex(hash(r)).c_str());
  }
  // Paired reads drive both ports with distinguishable data at once.
  for (unsigned r = 1; r <= 15; ++r) {
    const unsigned other = r == 1 ? 15 : r - 1;
    emit_absorb(as, "addu $t8, $" + std::to_string(r) + ", $" +
                        std::to_string(other));
  }
  for (unsigned r = 1; r <= 15; ++r) {
    const unsigned other = (r ^ 8u) == 0 ? 15 : (r ^ 8u);
    emit_absorb(as, "xor  $t8, $" + std::to_string(r) + ", $" +
                        std::to_string(other));
  }

  as.comment("phase 2: high half under test, MISR moves to low registers");
  as.line("addu $2, $s2, $zero");  // carry the signature over
  as.line("addu $7, $s7, $zero");  // and the polynomial
  // Registers 16..30 absorb through the mirrored subroutine ($31 is the
  // return address of jal and is tested inline afterwards).
  auto absorb_lo = [&](const std::string& apply) {
    as.line("jal  misr_lo");
    as.line("%s", apply.c_str());
  };
  for (unsigned pass = 0; pass < 2; ++pass) {
    for (unsigned r = 16; r <= 30; ++r) {
      const std::uint32_t data =
          ((r & 1u) != 0) == (pass == 0) ? 0x55555555u : 0xaaaaaaaau;
      as.line("li   $%u, %s", r, hex(data).c_str());
    }
    for (unsigned r = 16; r <= 30; ++r) {
      const unsigned other = r == 30 ? 16 : r + 1;
      absorb_lo(pass == 0 ? "addu $8, $" + std::to_string(r) + ", $" +
                                std::to_string(other)
                          : "addu $8, $" + std::to_string(other) + ", $" +
                                std::to_string(r));
    }
  }
  as.comment("unique values, high half");
  for (unsigned r = 16; r <= 30; ++r) {
    as.line("li   $%u, %s", r, hex(hash(r)).c_str());
  }
  for (unsigned r = 16; r <= 30; ++r) {
    const unsigned other = r == 16 ? 30 : r - 1;
    absorb_lo("addu $8, $" + std::to_string(r) + ", $" +
              std::to_string(other));
  }
  for (unsigned r = 16; r <= 30; ++r) {
    unsigned other = 16 + ((r - 16) ^ 8u) % 15;
    if (other == r) other = 30;
    absorb_lo("xor  $8, $" + std::to_string(r) + ", $" +
              std::to_string(other));
  }
  as.comment("register $31 tested inline (it is the jal link register)");
  for (std::uint32_t pattern :
       {0x55555555u, 0xaaaaaaaau, hash(31)}) {
    as.line("li   $31, %s", hex(pattern).c_str());
    inline_absorb_lo(31);
  }

  as.line("la   $5, signatures");
  as.line("sw   $2, %u($5)", 2u * 4);
  Routine r{.name = "rf",
            .target = CutId::kRegisterFile,
            .strategy = TpgStrategy::kRegularDeterministic,
            .style = "RegD (I)",
            .assembly = as.take(),
            .sig_slot = 2,
            .pattern_count = 3u * 31};
  return r;
}

// ---------------------------------------------------- memory controller ----

Routine make_memctrl_routine(const CodegenOptions& opts) {
  Asm as;
  as.comment("Memory controller self-test: RegD (I) lane sweep");
  emit_seed(as, opts);
  as.line("la   $s3, memtest_data");

  std::size_t patterns = 0;
  auto store = [&](const char* op, std::uint32_t data, unsigned off) {
    as.line("li   $s0, %s", hex(data).c_str());
    as.line("%-4s $s0, %u($s3)", op, off);
    ++patterns;
  };
  auto load = [&](const char* op, unsigned off) {
    emit_absorb(as, std::string(op) + " $t8, " + std::to_string(off) +
                        "($s3)");
    ++patterns;
  };

  as.comment("word lanes");
  for (std::uint32_t data :
       {0x55555555u, 0xaaaaaaaau, 0xffffffffu, 0x00000000u}) {
    store("sw", data, 0);
    load("lw", 0);
  }
  as.comment("byte lanes: replication, enables, extraction, sign extension");
  store("sw", 0xa5a5a5a5u, 0);
  for (unsigned off = 0; off < 4; ++off) {
    load("lb", off);   // sign extend 0xa5
    load("lbu", off);
  }
  store("sw", 0x5a5a5a5au, 0);
  for (unsigned off = 0; off < 4; ++off) {
    store("sb", 0x55u + off, off);
    load("lbu", off);
    load("lb", off);
  }
  as.comment("half lanes");
  store("sw", 0x8000ffffu, 0);
  load("lh", 0);
  load("lhu", 0);
  load("lh", 2);
  load("lhu", 2);
  for (unsigned off : {0u, 2u}) {
    store("sh", 0x5555u, off);
    load("lhu", off);
    store("sh", 0xaaaau, off);
    load("lh", off);
  }
  as.comment("second word keeps a background pattern under byte writes");
  store("sw", 0x33cc33ccu, 4);
  store("sb", 0xffu, 5);
  load("lw", 4);

  emit_unload(as, 3);
  Routine r{.name = "mem",
            .target = CutId::kMemCtrl,
            .strategy = TpgStrategy::kRegularDeterministic,
            .style = "RegD (I)",
            .assembly = as.take(),
            .sig_slot = 3,
            .pattern_count = patterns};
  r.data_assembly = "memtest_data:\n  .word 0, 0\n";
  return r;
}

// ------------------------------------------------------------- control -----

Routine make_control_routine(const CodegenOptions& opts) {
  Asm as;
  as.comment("Control logic functional test: every supported opcode");
  emit_seed(as, opts);
  as.line("li   $s0, 0x12345678");
  as.line("li   $s1, 0x00000007");

  as.comment("R-type ALU group");
  for (const char* op : {"add", "addu", "sub", "subu", "and", "or", "xor",
                         "nor", "slt", "sltu"}) {
    emit_absorb(as, std::string(op) + " $t8, $s0, $s1");
  }
  as.comment("shifts, immediate and variable");
  for (const char* op : {"sll", "srl", "sra"}) {
    emit_absorb(as, std::string(op) + " $t8, $s0, 5");
  }
  for (const char* op : {"sllv", "srlv", "srav"}) {
    emit_absorb(as, std::string(op) + " $t8, $s0, $s1");
  }
  as.comment("immediate ALU group");
  emit_absorb(as, "addi $t8, $s0, 0x123");
  emit_absorb(as, "addiu $t8, $s0, -0x123");
  emit_absorb(as, "slti $t8, $s0, 0x7fff");
  emit_absorb(as, "sltiu $t8, $s0, 0x7fff");
  emit_absorb(as, "andi $t8, $s0, 0xf0f0");
  emit_absorb(as, "ori  $t8, $s0, 0x0f0f");
  emit_absorb(as, "xori $t8, $s0, 0xffff");
  emit_absorb(as, "lui  $t8, 0xa55a");
  as.comment("multiply/divide and HI/LO moves");
  as.line("mult $s0, $s1");
  emit_absorb(as, "mflo $t8");
  emit_absorb(as, "mfhi $t8");
  as.line("multu $s0, $s1");
  emit_absorb(as, "mflo $t8");
  as.line("div  $s0, $s1");
  emit_absorb(as, "mflo $t8");
  emit_absorb(as, "mfhi $t8");
  as.line("divu $s0, $s1");
  emit_absorb(as, "mfhi $t8");
  as.line("mthi $s0");
  emit_absorb(as, "mfhi $t8");
  as.line("mtlo $s1");
  emit_absorb(as, "mflo $t8");
  as.comment("memory opcodes");
  as.line("la   $s3, ctrl_data");
  as.line("sw   $s0, 0($s3)");
  emit_absorb(as, "lw   $t8, 0($s3)");
  as.line("sb   $s0, 1($s3)");
  emit_absorb(as, "lb   $t8, 1($s3)");
  emit_absorb(as, "lbu  $t8, 3($s3)");
  as.line("sh   $s0, 2($s3)");
  emit_absorb(as, "lh   $t8, 2($s3)");
  emit_absorb(as, "lhu  $t8, 0($s3)");
  as.comment("branches: both directions of beq/bne");
  as.line("li   $t8, 0");
  as.line("beq  $s0, $s0, ctrl_b1");
  as.line("ori  $t8, $t8, 1");     // delay slot, executes
  as.line("ori  $t8, $t8, 2");     // skipped when taken
  as.label("ctrl_b1");
  as.line("beq  $s0, $s1, ctrl_b2");  // not taken
  as.line("ori  $t8, $t8, 4");
  as.line("ori  $t8, $t8, 8");        // falls through
  as.label("ctrl_b2");
  as.line("bne  $s0, $s1, ctrl_b3");  // taken
  as.line("ori  $t8, $t8, 16");
  as.line("ori  $t8, $t8, 32");       // skipped
  as.label("ctrl_b3");
  as.line("bne  $s0, $s0, ctrl_b4");  // not taken
  as.line("ori  $t8, $t8, 64");
  as.line("ori  $t8, $t8, 128");
  as.label("ctrl_b4");
  emit_absorb(as, "nop");
  as.comment("jumps: j, jal, jr");
  as.line("j    ctrl_j1");
  as.line("ori  $t8, $t8, 1");
  as.line("ori  $t8, $t8, 2");  // skipped
  as.label("ctrl_j1");
  as.line("jal  ctrl_sub");
  as.line("nop");
  emit_absorb(as, "addu $t8, $v0, $zero");
  as.line("b    ctrl_end");
  as.line("nop");
  as.label("ctrl_sub");
  as.line("li   $v0, 0x900d");
  as.line("jr   $ra");
  as.line("nop");
  as.label("ctrl_end");
  emit_absorb(as, "addu $t8, $t8, $zero");

  emit_unload(as, 6);
  Routine r{.name = "ctrl",
            .target = CutId::kControl,
            .strategy = TpgStrategy::kFunctionalTest,
            .style = "FT",
            .assembly = as.take(),
            .sig_slot = 6,
            .pattern_count = rtlgen::all_instruction_opcodes().size()};
  r.data_assembly = "ctrl_data:\n  .word 0\n";
  return r;
}

// ----------------------------------------------------- A-VC routine --------

Routine make_avc_address_routine(const CodegenOptions& opts,
                                 unsigned addr_bits) {
  Asm as;
  as.comment("A-VC address sweep: distributed references walking the MAR");
  emit_seed(as, opts);
  std::size_t patterns = 0;
  // Word-aligned walking-bit addresses, well above the program image.
  for (unsigned k = 4; k <= addr_bits; ++k) {
    const std::uint32_t addr = std::uint32_t{1} << k;
    const std::uint32_t marker = 0xa0000000u | addr;
    as.line("li   $s3, %s", hex(addr).c_str());
    as.line("li   $s0, %s", hex(marker).c_str());
    as.line("sw   $s0, 0($s3)");
    emit_absorb(as, "lw   $t8, 0($s3)");
    ++patterns;
    // Pairwise bit: addr | 8 toggles a second MAR bit in the same window.
    as.line("li   $s3, %s", hex(addr | 8u).c_str());
    as.line("sw   $s0, 0($s3)");
    emit_absorb(as, "lw   $t8, 0($s3)");
    ++patterns;
  }
  emit_unload(as, 7);
  return {.name = "avc",
          .target = CutId::kMemCtrl,
          .strategy = TpgStrategy::kRegularDeterministic,
          .style = "RegD (I) A-VC",
          .assembly = as.take(),
          .sig_slot = 7,
          .pattern_count = patterns};
}

// ------------------------------------------------- code-style studies ------

Routine make_fig1_immediate_routine(const std::vector<AluOpnd>& tests,
                                    const CodegenOptions& opts,
                                    Compaction compaction) {
  Asm as;
  as.comment("Figure 1 code style: patterns via immediate instructions");
  emit_seed(as, opts);
  for (const AluOpnd& t : tests) {
    as.line("li   $s0, %s", hex(t.a).c_str());
    as.line("li   $s1, %s", hex(t.b).c_str());
    if (compaction == Compaction::kMisr) {
      emit_absorb(as, std::string(alu_mnemonic(t.op)) + " $t8, $s0, $s1");
    } else {
      as.line("%s $t8, $s0, $s1", alu_mnemonic(t.op));
      as.line("xor  $s2, $s2, $t8");
    }
  }
  emit_unload(as, 7);
  return {.name = "fig1",
          .target = CutId::kAlu,
          .strategy = TpgStrategy::kAtpgDeterministic,
          .style = compaction == Compaction::kMisr ? "AtpgD (I)"
                                                   : "AtpgD (I) xor",
          .assembly = as.take(),
          .sig_slot = 7,
          .pattern_count = tests.size()};
}

Routine make_fig2_datafetch_routine(const std::vector<AluOpnd>& tests,
                                    AluOp op, const CodegenOptions& opts) {
  Asm as;
  as.comment("Figure 2 code style: patterns fetched from data memory");
  emit_seed(as, opts);
  as.line("la   $s3, fig2_patterns");
  as.line("li   $s4, %zu", tests.size());
  as.line("add  $t0, $zero, $zero");
  as.label("fig2_loop");
  as.line("lw   $s0, 0($s3)");
  as.line("lw   $s1, 4($s3)");
  as.line("addiu $s3, $s3, 8");
  as.line("addiu $t0, $t0, 1");
  emit_absorb(as, std::string(alu_mnemonic(op)) + " $t8, $s0, $s1");
  as.line("bne  $s4, $t0, fig2_loop");
  as.line("nop");
  emit_unload(as, 7);

  std::string data = "fig2_patterns:\n";
  for (const AluOpnd& t : tests) {
    data += "  .word " + hex(t.a) + ", " + hex(t.b) + "\n";
  }
  return {.name = "fig2",
          .target = CutId::kAlu,
          .strategy = TpgStrategy::kAtpgDeterministic,
          .style = "AtpgD (L)",
          .assembly = as.take(),
          .data_assembly = std::move(data),
          .sig_slot = 7,
          .pattern_count = tests.size()};
}

Routine make_fig3_lfsr_routine(AluOp op, std::uint32_t seed_x,
                               std::uint32_t seed_y, unsigned iterations,
                               const CodegenOptions& opts) {
  Asm as;
  as.comment("Figure 3 code style: software-LFSR pseudorandom loop");
  emit_seed(as, opts);
  as.line("li   $s0, %s", hex(seed_x).c_str());
  as.line("li   $s1, %s", hex(seed_y).c_str());
  as.line("li   $s5, %u", iterations);
  as.line("add  $t0, $zero, $zero");
  as.label("fig3_loop");
  as.comment("LFSR step, operand X");
  as.line("andi $t9, $s0, 1");
  as.line("srl  $s0, $s0, 1");
  as.line("beq  $t9, $zero, fig3_x");
  as.line("nop");
  as.line("xor  $s0, $s0, $s7");
  as.label("fig3_x");
  as.comment("LFSR step, operand Y");
  as.line("andi $t9, $s1, 1");
  as.line("srl  $s1, $s1, 1");
  as.line("beq  $t9, $zero, fig3_y");
  as.line("nop");
  as.line("xor  $s1, $s1, $s7");
  as.label("fig3_y");
  as.line("addiu $t0, $t0, 1");
  emit_absorb(as, std::string(alu_mnemonic(op)) + " $t8, $s0, $s1");
  as.line("bne  $s5, $t0, fig3_loop");
  as.line("nop");
  emit_unload(as, 7);
  return {.name = "fig3",
          .target = CutId::kAlu,
          .strategy = TpgStrategy::kPseudorandom,
          .style = "PR (L)",
          .assembly = as.take(),
          .sig_slot = 7,
          .pattern_count = iterations};
}

Routine make_fig4_regular_routine(AluOp op, const CodegenOptions& opts) {
  Asm as;
  as.comment("Figure 4 code style: regular deterministic loop");
  emit_seed(as, opts);
  as.comment("for every X = 1<<i, apply Y = 1<<j for all j");
  as.line("li   $s0, 1");
  as.label("fig4_x");
  as.line("li   $s1, 1");
  as.label("fig4_y");
  emit_absorb(as, std::string(alu_mnemonic(op)) + " $t8, $s0, $s1");
  as.line("sll  $s1, $s1, 1");
  as.line("bne  $s1, $zero, fig4_y");
  as.line("nop");
  as.line("sll  $s0, $s0, 1");
  as.line("bne  $s0, $zero, fig4_x");
  as.line("nop");
  emit_unload(as, 7);
  return {.name = "fig4",
          .target = CutId::kAlu,
          .strategy = TpgStrategy::kRegularDeterministic,
          .style = "RegD (L)",
          .assembly = as.take(),
          .sig_slot = 7,
          .pattern_count = 32u * 32u};
}

}  // namespace sbst::core
