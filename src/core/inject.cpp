#include "core/inject.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/program.hpp"
#include "core/session.hpp"
#include "fault/sim_parallel.hpp"
#include "rtlgen/multiplier.hpp"
#include "sim/exec.hpp"

namespace sbst::core {

const char* run_outcome_name(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kOkMatch: return "ok_match";
    case RunOutcome::kDetectedMismatch: return "detected_mismatch";
    case RunOutcome::kDetectedHang: return "detected_hang";
    case RunOutcome::kDetectedTrap: return "detected_trap";
    case RunOutcome::kDetectedWildStore: return "detected_wild_store";
    case RunOutcome::kInfraError: return "infra_error";
  }
  return "unknown";
}

RunOutcome classify_stop(sim::StopReason stop, bool signatures_match) {
  switch (stop) {
    case sim::StopReason::kHalted:
      return signatures_match ? RunOutcome::kOkMatch
                              : RunOutcome::kDetectedMismatch;
    case sim::StopReason::kInstructionBudget:
    case sim::StopReason::kCycleBudget:
    case sim::StopReason::kStoreBudget:
      return RunOutcome::kDetectedHang;
    case sim::StopReason::kWildStore:
      return RunOutcome::kDetectedWildStore;
    case sim::StopReason::kTrap:
      return RunOutcome::kDetectedTrap;
  }
  return RunOutcome::kInfraError;
}

OutcomeHistogram histogram_of(const std::vector<InjectionOutcome>& outcomes) {
  OutcomeHistogram h;
  for (const InjectionOutcome& o : outcomes) h.add(o.outcome);
  return h;
}

sim::RunBudget run_budget_for(const sim::ExecStats& good_stats, double factor,
                              const InjectOptions& options) {
  sim::RunBudget budget;  // defaults = legacy global cap, no cycle/store cap
  if (factor <= 0.0) return budget;
  const auto scaled = [factor](std::uint64_t v, std::uint64_t floor_v) {
    const double s = std::ceil(static_cast<double>(v) * factor);
    return std::max(static_cast<std::uint64_t>(s), floor_v);
  };
  budget.max_instructions =
      scaled(good_stats.instructions, options.min_instructions);
  budget.max_cycles = scaled(good_stats.total_cycles(), options.min_cycles);
  budget.max_stores = scaled(good_stats.stores, options.min_stores);
  return budget;
}

sim::StoreGuard store_guard_for(const TestProgram& program) {
  sim::StoreGuard guard;
  guard.regions.push_back(
      {program.image.base, program.image.end_address()});
  return guard;
}

void GateLevelFaultInjector::check_target(CutId target) const {
  if (target != CutId::kAlu && target != CutId::kShifter &&
      target != CutId::kMultiplier) {
    throw std::invalid_argument(
        "GateLevelFaultInjector: unsupported component");
  }
}

namespace {

/// Rejects fault sites that do not exist in the netlist BEFORE they reach
/// Evaluator::inject (whose force arrays are indexed without bounds
/// checks). This is the campaign layer's infra-error seam: a malformed
/// fault descriptor throws here and is degraded to kInfraError instead of
/// silently corrupting the simulation.
void validate_fault_site(const netlist::Netlist& nl,
                         const fault::Fault& fault) {
  if (fault.site.gate >= nl.gates().size()) {
    throw std::out_of_range(
        "GateLevelFaultInjector: fault site gate " +
        std::to_string(fault.site.gate) + " outside netlist (" +
        std::to_string(nl.gates().size()) + " gates)");
  }
  if (!fault.site.is_output() && fault.site.pin >= 3) {
    throw std::out_of_range("GateLevelFaultInjector: fault site pin " +
                            std::to_string(fault.site.pin) +
                            " outside gate input range");
  }
}

}  // namespace

void GateLevelFaultInjector::init_fault(const fault::Fault& fault) {
  fault_ = fault;
  stream_key_ = fault::fault_stream_key(fault);
  switch (fault.model) {
    case fault::FaultModel::kStuckAt:
      // Always-on: arm once, never toggle (the legacy code path).
      if (comp_eval_) {
        comp_eval_->inject_broadcast(fault.site, fault.stuck_value);
      } else {
        ref_eval_->inject_broadcast(fault.site, fault.stuck_value);
      }
      active_ = true;
      break;
    case fault::FaultModel::kTransition:
      line_ = fault.site.is_output()
                  ? fault.site.gate
                  : nl_->gate(fault.site.gate).in[fault.site.pin];
      line_eval_ = std::make_unique<netlist::Evaluator>(*nl_);
      break;
    case fault::FaultModel::kTransientSEU:
    case fault::FaultModel::kIntermittent:
      break;  // armed per operation by the activation stream
  }
}

GateLevelFaultInjector::GateLevelFaultInjector(const ProcessorModel& model,
                                               CutId target,
                                               const fault::Fault& fault)
    : target_(target), nl_(&model.component(target).netlist) {
  check_target(target);
  validate_fault_site(*nl_, fault);
  ref_eval_ = std::make_unique<netlist::Evaluator>(*nl_);
  init_fault(fault);
}

GateLevelFaultInjector::GateLevelFaultInjector(GradingSession& session,
                                               CutId target,
                                               const fault::Fault& fault)
    : target_(target), nl_(&session.model().component(target).netlist) {
  check_target(target);
  validate_fault_site(*nl_, fault);
  comp_eval_ = std::make_unique<netlist::CompiledEvaluator>(
      session.compiled(target), /*event_driven=*/true);
  init_fault(fault);
}

GateLevelFaultInjector::GateLevelFaultInjector(
    const netlist::Netlist& nl, const netlist::CompiledNetlist& compiled,
    CutId target, const fault::Fault& fault)
    : target_(target), nl_(&nl) {
  check_target(target);
  validate_fault_site(nl, fault);
  comp_eval_ = std::make_unique<netlist::CompiledEvaluator>(
      compiled, /*event_driven=*/true);
  init_fault(fault);
}

void GateLevelFaultInjector::drive(const char* port, std::uint64_t value) {
  if (comp_eval_) {
    comp_eval_->set_bus(nl_->input_port(port), value);
  } else {
    ref_eval_->set_bus(nl_->input_port(port), value);
  }
  if (line_eval_) line_eval_->set_bus(nl_->input_port(port), value);
}

void GateLevelFaultInjector::update_activation() {
  bool on = active_;
  switch (fault_.model) {
    case fault::FaultModel::kStuckAt:
      return;  // armed at construction, nothing to do per op
    case fault::FaultModel::kTransition: {
      // Launch/capture at operation granularity: the slow transition only
      // corrupts this operation if the fault-free line sat at the slow value
      // sv on the previous operation and should be !sv now. The first
      // operation has no launch partner and is never corrupted.
      line_eval_->eval();
      const bool lv = line_eval_->value(line_) & 1u;
      on = prev_line_sv_ && lv != fault_.stuck_value;
      prev_line_sv_ = lv == fault_.stuck_value;
      break;
    }
    case fault::FaultModel::kTransientSEU:
    case fault::FaultModel::kIntermittent:
      on = fault::fault_active(stream_key_, fault_.model, op_index_);
      break;
  }
  ++op_index_;
  if (on == active_) return;
  if (comp_eval_) {
    if (on) {
      comp_eval_->inject_broadcast(fault_.site, fault_.stuck_value);
    } else {
      comp_eval_->release_broadcast(fault_.site);
    }
  } else {
    if (on) {
      ref_eval_->inject_broadcast(fault_.site, fault_.stuck_value);
    } else {
      ref_eval_->release_broadcast(fault_.site);
    }
  }
  active_ = on;
}

std::uint64_t GateLevelFaultInjector::read(const char* port) {
  update_activation();
  if (comp_eval_) {
    comp_eval_->eval();
    return comp_eval_->bus_value(nl_->output_port(port));
  }
  ref_eval_->eval();
  return ref_eval_->bus_value(nl_->output_port(port));
}

std::optional<std::uint32_t> GateLevelFaultInjector::alu_result(
    rtlgen::AluOp op, std::uint32_t a, std::uint32_t b) {
  if (target_ != CutId::kAlu) return std::nullopt;
  drive("a", a);
  drive("b", b);
  drive("op", static_cast<std::uint64_t>(op));
  const auto r = static_cast<std::uint32_t>(read("result"));
  if (r != rtlgen::alu_ref(op, a, b)) ++corrupted_;
  return r;
}

std::optional<std::uint32_t> GateLevelFaultInjector::shift_result(
    rtlgen::ShiftOp op, std::uint32_t value, std::uint32_t shamt) {
  if (target_ != CutId::kShifter) return std::nullopt;
  drive("a", value);
  drive("shamt", shamt);
  drive("op", static_cast<std::uint64_t>(op));
  const auto r = static_cast<std::uint32_t>(read("result"));
  if (r != rtlgen::shifter_ref(op, value, shamt)) ++corrupted_;
  return r;
}

std::optional<std::uint64_t> GateLevelFaultInjector::mult_result(
    std::uint32_t a, std::uint32_t b) {
  if (target_ != CutId::kMultiplier) return std::nullopt;
  drive("a", a);
  drive("b", b);
  const std::uint64_t r = read("product");
  if (r != rtlgen::multiplier_ref(a, b)) ++corrupted_;
  return r;
}

namespace {

/// One guarded faulty run against precomputed good signatures. The good
/// machine is NOT re-executed here — callers hoist it once per
/// (program, config) and derive the watchdog budget from its stats.
InjectionOutcome faulty_outcome(
    const TestProgram& program,
    const std::vector<std::uint32_t>& good_signatures,
    GateLevelFaultInjector& injector, const sim::CpuConfig& config,
    std::shared_ptr<const isa::DecodedProgram> decoded,
    const sim::RunBudget& budget, const sim::StoreGuard* guard) {
  InjectionOutcome out;
  out.good_signatures = good_signatures;

  sim::Cpu bad(config);
  bad.reset();
  bad.load(program.image, std::move(decoded));
  sim::InjectSink<GateLevelFaultInjector> sink{&injector};
  // A fault can corrupt an address computation (trap, wild store) or keep
  // the program from ever reaching `break` (hang). The guarded run
  // classifies each ending; the signature slots keep the legacy inverted
  // convention for non-clean endings so `detected` and the signature
  // vectors stay comparable with pre-taxonomy results.
  const sim::GuardedResult run =
      bad.run_guarded(program.entry, sink, budget, guard);
  out.faulty_stats = run.stats;
  out.stop = run.reason;
  const bool clean = run.reason == sim::StopReason::kHalted;
  for (unsigned slot = 0; slot < kSignatureSlots; ++slot) {
    out.faulty_signatures.push_back(
        clean ? bad.read_word(program.signature_address(slot))
              : ~good_signatures[slot]);
  }
  out.corrupted_results = injector.corrupted_results();
  out.outcome = classify_stop(run.reason,
                              out.good_signatures == out.faulty_signatures);
  out.detected = outcome_detected(out.outcome);
  return out;
}

/// Session-less good run: executes the fault-free machine and unloads its
/// signature words and stats (the stats seed the watchdog budget, exactly
/// like the session's cached GoodRun).
GoodRun good_run_of(const TestProgram& program, const sim::CpuConfig& config,
                    const std::shared_ptr<const isa::DecodedProgram>& decoded) {
  sim::Cpu good(config);
  good.reset();
  good.load(program.image, decoded);
  GoodRun run;
  run.stats = good.run(program.entry);
  if (!run.stats.halted) {
    throw std::runtime_error("run_with_injection: good run did not halt");
  }
  run.signatures.reserve(kSignatureSlots);
  for (unsigned slot = 0; slot < kSignatureSlots; ++slot) {
    run.signatures.push_back(good.read_word(program.signature_address(slot)));
  }
  return run;
}

double resolved_factor(const InjectOptions& inject,
                       const GradingSession* session) {
  if (inject.budget_factor) return *inject.budget_factor;
  return session ? session->options().budget_factor : kDefaultBudgetFactor;
}

/// The campaign-side infra_error placeholder for fault whose task threw.
InjectionOutcome infra_outcome(const std::vector<std::uint32_t>& good_sigs) {
  InjectionOutcome out;
  out.outcome = RunOutcome::kInfraError;
  out.detected = false;
  out.good_signatures = good_sigs;
  return out;
}

}  // namespace

InjectionOutcome run_with_injection(const ProcessorModel& model,
                                    const TestProgram& program,
                                    CutId target, const fault::Fault& fault,
                                    const sim::CpuConfig& config,
                                    const InjectOptions& inject) {
  const auto decoded =
      std::make_shared<const isa::DecodedProgram>(program.image);
  const GoodRun good = good_run_of(program, config, decoded);
  const sim::RunBudget budget =
      run_budget_for(good.stats, resolved_factor(inject, nullptr), inject);
  const sim::StoreGuard guard = store_guard_for(program);
  GateLevelFaultInjector injector(model, target, fault);
  return faulty_outcome(program, good.signatures, injector, config, decoded,
                        budget, inject.store_guard ? &guard : nullptr);
}

InjectionOutcome run_with_injection(GradingSession& session,
                                    const TestProgram& program,
                                    CutId target, const fault::Fault& fault,
                                    const sim::CpuConfig& config,
                                    const InjectOptions& inject) {
  // Copy before further session calls: with the cache off a later good_run
  // request for the same program replaces the slot.
  const GoodRun good = session.good_run(program, config);
  if (!good.stats.halted) {
    throw std::runtime_error("run_with_injection: good run did not halt");
  }
  const sim::RunBudget budget =
      run_budget_for(good.stats, resolved_factor(inject, &session), inject);
  const sim::StoreGuard guard = store_guard_for(program);
  auto decoded = session.decoded(program.image);
  GateLevelFaultInjector injector(session, target, fault);
  return faulty_outcome(program, good.signatures, injector, config,
                        std::move(decoded), budget,
                        inject.store_guard ? &guard : nullptr);
}

std::vector<InjectionOutcome> run_injection_campaign(
    GradingSession& session, const TestProgram& program, CutId target,
    const std::vector<fault::Fault>& faults, const sim::CpuConfig& config,
    const InjectOptions& inject) {
  // Serial prefetch: one good run, one predecoded image, one compiled
  // netlist — shared read-only by every per-fault task (workers never touch
  // the session caches, so cache-off mode stays safe under parallelism).
  const GoodRun good = session.good_run(program, config);
  if (!good.stats.halted) {
    throw std::runtime_error("run_with_injection: good run did not halt");
  }
  const sim::RunBudget budget =
      run_budget_for(good.stats, resolved_factor(inject, &session), inject);
  const sim::StoreGuard guard = store_guard_for(program);
  const sim::StoreGuard* guard_p = inject.store_guard ? &guard : nullptr;
  const auto decoded = session.decoded(program.image);
  const netlist::Netlist& nl = session.model().component(target).netlist;
  const netlist::CompiledNetlist& compiled = session.compiled(target);

  std::vector<InjectionOutcome> out(faults.size());
  const auto run_one = [&](std::size_t i) {
    GateLevelFaultInjector injector(nl, compiled, target, faults[i]);
    out[i] = faulty_outcome(program, good.signatures, injector, config,
                            decoded, budget, guard_p);
  };
  fault::GradingPlan plan;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    plan.add_task([&run_one, i] { run_one(i); });
  }
  // Fault-tolerant execution: a throwing task is contained by the pool,
  // retried serially here (the failure might be resource-transient), and
  // only then pinned to kInfraError — the campaign always returns a verdict
  // for every fault.
  const std::vector<fault::ThreadPool::TaskFailure> failures =
      plan.run_capture(session.pool());
  for (const fault::ThreadPool::TaskFailure& f : failures) {
    out[f.task] = infra_outcome(good.signatures);
    for (unsigned attempt = 0; attempt < inject.infra_retries; ++attempt) {
      try {
        run_one(f.task);
        break;
      } catch (...) {
        out[f.task] = infra_outcome(good.signatures);
      }
    }
  }
  return out;
}

std::vector<InjectionOutcome> run_injection_campaign(
    const ProcessorModel& model, const TestProgram& program, CutId target,
    const std::vector<fault::Fault>& faults, const sim::CpuConfig& config,
    const InjectOptions& inject) {
  const auto decoded =
      std::make_shared<const isa::DecodedProgram>(program.image);
  const GoodRun good = good_run_of(program, config, decoded);
  const sim::RunBudget budget =
      run_budget_for(good.stats, resolved_factor(inject, nullptr), inject);
  const sim::StoreGuard guard = store_guard_for(program);
  const sim::StoreGuard* guard_p = inject.store_guard ? &guard : nullptr;
  std::vector<InjectionOutcome> out;
  out.reserve(faults.size());
  for (const fault::Fault& fault : faults) {
    const auto run_one = [&]() {
      GateLevelFaultInjector injector(model, target, fault);
      return faulty_outcome(program, good.signatures, injector, config,
                            decoded, budget, guard_p);
    };
    InjectionOutcome one = infra_outcome(good.signatures);
    for (unsigned attempt = 0; attempt <= inject.infra_retries; ++attempt) {
      try {
        one = run_one();
        break;
      } catch (...) {
        one = infra_outcome(good.signatures);
      }
    }
    out.push_back(std::move(one));
  }
  return out;
}

}  // namespace sbst::core
