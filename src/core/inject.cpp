#include "core/inject.hpp"

#include <stdexcept>

#include "core/program.hpp"
#include "core/session.hpp"
#include "rtlgen/multiplier.hpp"

namespace sbst::core {

void GateLevelFaultInjector::check_target(CutId target) const {
  if (target != CutId::kAlu && target != CutId::kShifter &&
      target != CutId::kMultiplier) {
    throw std::invalid_argument(
        "GateLevelFaultInjector: unsupported component");
  }
}

GateLevelFaultInjector::GateLevelFaultInjector(const ProcessorModel& model,
                                               CutId target,
                                               const fault::Fault& fault)
    : target_(target), nl_(&model.component(target).netlist) {
  check_target(target);
  ref_eval_ = std::make_unique<netlist::Evaluator>(*nl_);
  ref_eval_->inject(fault.site, fault.stuck_value, ~std::uint64_t{0});
}

GateLevelFaultInjector::GateLevelFaultInjector(GradingSession& session,
                                               CutId target,
                                               const fault::Fault& fault)
    : target_(target), nl_(&session.model().component(target).netlist) {
  check_target(target);
  comp_eval_ = std::make_unique<netlist::CompiledEvaluator>(
      session.compiled(target), /*event_driven=*/true);
  comp_eval_->inject(fault.site, fault.stuck_value, ~std::uint64_t{0});
}

void GateLevelFaultInjector::drive(const char* port, std::uint64_t value) {
  if (comp_eval_) {
    comp_eval_->set_bus(nl_->input_port(port), value);
  } else {
    ref_eval_->set_bus(nl_->input_port(port), value);
  }
}

std::uint64_t GateLevelFaultInjector::read(const char* port) {
  if (comp_eval_) {
    comp_eval_->eval();
    return comp_eval_->bus_value(nl_->output_port(port));
  }
  ref_eval_->eval();
  return ref_eval_->bus_value(nl_->output_port(port));
}

std::optional<std::uint32_t> GateLevelFaultInjector::alu_result(
    rtlgen::AluOp op, std::uint32_t a, std::uint32_t b) {
  if (target_ != CutId::kAlu) return std::nullopt;
  drive("a", a);
  drive("b", b);
  drive("op", static_cast<std::uint64_t>(op));
  const auto r = static_cast<std::uint32_t>(read("result"));
  if (r != rtlgen::alu_ref(op, a, b)) ++corrupted_;
  return r;
}

std::optional<std::uint32_t> GateLevelFaultInjector::shift_result(
    rtlgen::ShiftOp op, std::uint32_t value, std::uint32_t shamt) {
  if (target_ != CutId::kShifter) return std::nullopt;
  drive("a", value);
  drive("shamt", shamt);
  drive("op", static_cast<std::uint64_t>(op));
  const auto r = static_cast<std::uint32_t>(read("result"));
  if (r != rtlgen::shifter_ref(op, value, shamt)) ++corrupted_;
  return r;
}

std::optional<std::uint64_t> GateLevelFaultInjector::mult_result(
    std::uint32_t a, std::uint32_t b) {
  if (target_ != CutId::kMultiplier) return std::nullopt;
  drive("a", a);
  drive("b", b);
  const std::uint64_t r = read("product");
  if (r != rtlgen::multiplier_ref(a, b)) ++corrupted_;
  return r;
}

namespace {

InjectionOutcome run_outcome(const TestProgram& program,
                             GateLevelFaultInjector& injector,
                             const sim::CpuConfig& config) {
  InjectionOutcome out;

  sim::Cpu good(config);
  good.reset();
  good.load(program.image);
  if (!good.run(program.entry).halted) {
    throw std::runtime_error("run_with_injection: good run did not halt");
  }

  sim::Cpu bad(config);
  bad.reset();
  bad.load(program.image);
  bad.set_hooks(&injector);
  // A fault can corrupt an address computation and crash the program (bus
  // error) or keep it from ever reaching `break` (hang). Both are caught by
  // the exception handler / watchdog in a real deployment — architecturally
  // a detection, recorded here as inverted signatures.
  bool crashed = false;
  sim::ExecStats faulty_stats;
  try {
    faulty_stats = bad.run(program.entry);
  } catch (const sim::CpuError&) {
    crashed = true;
  }

  for (unsigned slot = 0; slot < kSignatureSlots; ++slot) {
    out.good_signatures.push_back(
        good.read_word(program.signature_address(slot)));
    out.faulty_signatures.push_back(
        !crashed && faulty_stats.halted
            ? bad.read_word(program.signature_address(slot))
            : ~good.read_word(program.signature_address(slot)));
  }
  out.corrupted_results = injector.corrupted_results();
  out.detected = out.good_signatures != out.faulty_signatures;
  return out;
}

}  // namespace

InjectionOutcome run_with_injection(const ProcessorModel& model,
                                    const TestProgram& program,
                                    CutId target, const fault::Fault& fault,
                                    const sim::CpuConfig& config) {
  GateLevelFaultInjector injector(model, target, fault);
  return run_outcome(program, injector, config);
}

InjectionOutcome run_with_injection(GradingSession& session,
                                    const TestProgram& program,
                                    CutId target, const fault::Fault& fault,
                                    const sim::CpuConfig& config) {
  GateLevelFaultInjector injector(session, target, fault);
  return run_outcome(program, injector, config);
}

}  // namespace sbst::core
