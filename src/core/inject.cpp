#include "core/inject.hpp"

#include <stdexcept>

#include "core/program.hpp"
#include "core/session.hpp"
#include "fault/sim_parallel.hpp"
#include "rtlgen/multiplier.hpp"
#include "sim/exec.hpp"

namespace sbst::core {

void GateLevelFaultInjector::check_target(CutId target) const {
  if (target != CutId::kAlu && target != CutId::kShifter &&
      target != CutId::kMultiplier) {
    throw std::invalid_argument(
        "GateLevelFaultInjector: unsupported component");
  }
}

GateLevelFaultInjector::GateLevelFaultInjector(const ProcessorModel& model,
                                               CutId target,
                                               const fault::Fault& fault)
    : target_(target), nl_(&model.component(target).netlist) {
  check_target(target);
  ref_eval_ = std::make_unique<netlist::Evaluator>(*nl_);
  ref_eval_->inject(fault.site, fault.stuck_value, ~std::uint64_t{0});
}

GateLevelFaultInjector::GateLevelFaultInjector(GradingSession& session,
                                               CutId target,
                                               const fault::Fault& fault)
    : target_(target), nl_(&session.model().component(target).netlist) {
  check_target(target);
  comp_eval_ = std::make_unique<netlist::CompiledEvaluator>(
      session.compiled(target), /*event_driven=*/true);
  comp_eval_->inject(fault.site, fault.stuck_value, ~std::uint64_t{0});
}

GateLevelFaultInjector::GateLevelFaultInjector(
    const netlist::Netlist& nl, const netlist::CompiledNetlist& compiled,
    CutId target, const fault::Fault& fault)
    : target_(target), nl_(&nl) {
  check_target(target);
  comp_eval_ = std::make_unique<netlist::CompiledEvaluator>(
      compiled, /*event_driven=*/true);
  comp_eval_->inject(fault.site, fault.stuck_value, ~std::uint64_t{0});
}

void GateLevelFaultInjector::drive(const char* port, std::uint64_t value) {
  if (comp_eval_) {
    comp_eval_->set_bus(nl_->input_port(port), value);
  } else {
    ref_eval_->set_bus(nl_->input_port(port), value);
  }
}

std::uint64_t GateLevelFaultInjector::read(const char* port) {
  if (comp_eval_) {
    comp_eval_->eval();
    return comp_eval_->bus_value(nl_->output_port(port));
  }
  ref_eval_->eval();
  return ref_eval_->bus_value(nl_->output_port(port));
}

std::optional<std::uint32_t> GateLevelFaultInjector::alu_result(
    rtlgen::AluOp op, std::uint32_t a, std::uint32_t b) {
  if (target_ != CutId::kAlu) return std::nullopt;
  drive("a", a);
  drive("b", b);
  drive("op", static_cast<std::uint64_t>(op));
  const auto r = static_cast<std::uint32_t>(read("result"));
  if (r != rtlgen::alu_ref(op, a, b)) ++corrupted_;
  return r;
}

std::optional<std::uint32_t> GateLevelFaultInjector::shift_result(
    rtlgen::ShiftOp op, std::uint32_t value, std::uint32_t shamt) {
  if (target_ != CutId::kShifter) return std::nullopt;
  drive("a", value);
  drive("shamt", shamt);
  drive("op", static_cast<std::uint64_t>(op));
  const auto r = static_cast<std::uint32_t>(read("result"));
  if (r != rtlgen::shifter_ref(op, value, shamt)) ++corrupted_;
  return r;
}

std::optional<std::uint64_t> GateLevelFaultInjector::mult_result(
    std::uint32_t a, std::uint32_t b) {
  if (target_ != CutId::kMultiplier) return std::nullopt;
  drive("a", a);
  drive("b", b);
  const std::uint64_t r = read("product");
  if (r != rtlgen::multiplier_ref(a, b)) ++corrupted_;
  return r;
}

namespace {

/// One faulty run against precomputed good signatures. The good machine is
/// NOT re-executed here — callers hoist it once per (program, config).
InjectionOutcome faulty_outcome(
    const TestProgram& program,
    const std::vector<std::uint32_t>& good_signatures,
    GateLevelFaultInjector& injector, const sim::CpuConfig& config,
    std::shared_ptr<const isa::DecodedProgram> decoded) {
  InjectionOutcome out;
  out.good_signatures = good_signatures;

  sim::Cpu bad(config);
  bad.reset();
  bad.load(program.image, std::move(decoded));
  sim::InjectSink<GateLevelFaultInjector> sink{&injector};
  // A fault can corrupt an address computation and crash the program (bus
  // error) or keep it from ever reaching `break` (hang). Both are caught by
  // the exception handler / watchdog in a real deployment — architecturally
  // a detection, recorded here as inverted signatures.
  bool crashed = false;
  sim::ExecStats faulty_stats;
  try {
    faulty_stats = bad.run_sink(program.entry, sink);
  } catch (const sim::CpuError&) {
    crashed = true;
  }

  for (unsigned slot = 0; slot < kSignatureSlots; ++slot) {
    out.faulty_signatures.push_back(
        !crashed && faulty_stats.halted
            ? bad.read_word(program.signature_address(slot))
            : ~good_signatures[slot]);
  }
  out.corrupted_results = injector.corrupted_results();
  out.detected = out.good_signatures != out.faulty_signatures;
  return out;
}

/// Session-less good run: executes the fault-free machine and unloads its
/// signature words.
std::vector<std::uint32_t> good_signatures_of(
    const TestProgram& program, const sim::CpuConfig& config,
    const std::shared_ptr<const isa::DecodedProgram>& decoded) {
  sim::Cpu good(config);
  good.reset();
  good.load(program.image, decoded);
  if (!good.run(program.entry).halted) {
    throw std::runtime_error("run_with_injection: good run did not halt");
  }
  std::vector<std::uint32_t> sigs;
  sigs.reserve(kSignatureSlots);
  for (unsigned slot = 0; slot < kSignatureSlots; ++slot) {
    sigs.push_back(good.read_word(program.signature_address(slot)));
  }
  return sigs;
}

}  // namespace

InjectionOutcome run_with_injection(const ProcessorModel& model,
                                    const TestProgram& program,
                                    CutId target, const fault::Fault& fault,
                                    const sim::CpuConfig& config) {
  const auto decoded =
      std::make_shared<const isa::DecodedProgram>(program.image);
  const auto sigs = good_signatures_of(program, config, decoded);
  GateLevelFaultInjector injector(model, target, fault);
  return faulty_outcome(program, sigs, injector, config, decoded);
}

InjectionOutcome run_with_injection(GradingSession& session,
                                    const TestProgram& program,
                                    CutId target, const fault::Fault& fault,
                                    const sim::CpuConfig& config) {
  const GoodRun& good = session.good_run(program, config);
  if (!good.stats.halted) {
    throw std::runtime_error("run_with_injection: good run did not halt");
  }
  // Copy before further session calls: with the cache off a later good_run
  // request for the same program replaces the slot.
  const std::vector<std::uint32_t> sigs = good.signatures;
  auto decoded = session.decoded(program.image);
  GateLevelFaultInjector injector(session, target, fault);
  return faulty_outcome(program, sigs, injector, config, std::move(decoded));
}

std::vector<InjectionOutcome> run_injection_campaign(
    GradingSession& session, const TestProgram& program, CutId target,
    const std::vector<fault::Fault>& faults, const sim::CpuConfig& config) {
  // Serial prefetch: one good run, one predecoded image, one compiled
  // netlist — shared read-only by every per-fault task (workers never touch
  // the session caches, so cache-off mode stays safe under parallelism).
  const GoodRun good = session.good_run(program, config);
  if (!good.stats.halted) {
    throw std::runtime_error("run_with_injection: good run did not halt");
  }
  const auto decoded = session.decoded(program.image);
  const netlist::Netlist& nl = session.model().component(target).netlist;
  const netlist::CompiledNetlist& compiled = session.compiled(target);

  std::vector<InjectionOutcome> out(faults.size());
  fault::GradingPlan plan;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    plan.add_task([&, i] {
      GateLevelFaultInjector injector(nl, compiled, target, faults[i]);
      out[i] =
          faulty_outcome(program, good.signatures, injector, config, decoded);
    });
  }
  plan.run(session.pool());
  return out;
}

std::vector<InjectionOutcome> run_injection_campaign(
    const ProcessorModel& model, const TestProgram& program, CutId target,
    const std::vector<fault::Fault>& faults, const sim::CpuConfig& config) {
  const auto decoded =
      std::make_shared<const isa::DecodedProgram>(program.image);
  const auto sigs = good_signatures_of(program, config, decoded);
  std::vector<InjectionOutcome> out;
  out.reserve(faults.size());
  for (const fault::Fault& fault : faults) {
    GateLevelFaultInjector injector(model, target, fault);
    out.push_back(faulty_outcome(program, sigs, injector, config, decoded));
  }
  return out;
}

}  // namespace sbst::core
