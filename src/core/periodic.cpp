#include "core/periodic.hpp"

#include <algorithm>
#include <cmath>

#include "fault/thread_pool.hpp"

namespace sbst::core {

bool fault_active_at(const FaultProcess& fault, double t) {
  if (t < fault.arrival_s) return false;
  const double rel = t - fault.arrival_s;
  switch (fault.kind) {
    case FaultKind::kPermanent:
      return true;
    case FaultKind::kIntermittent: {
      if (fault.period_s <= 0) return true;
      const double phase = std::fmod(rel, fault.period_s);
      return phase < fault.active_s;
    }
    case FaultKind::kTransient:
      return rel < fault.active_s;
  }
  return false;
}

double expected_permanent_latency(const PeriodicConfig& config) {
  // A permanent fault arriving uniformly within a test period waits on
  // average half a period, plus the test execution itself.
  return config.test_period_s / 2 + config.test_exec_s;
}

double intermittent_duty_cycle(const FaultProcess& fault) {
  if (fault.kind != FaultKind::kIntermittent || fault.period_s <= 0) {
    return 1.0;
  }
  return std::min(1.0, fault.active_s / fault.period_s);
}

ChunkingReport chunked_execution(std::uint64_t program_cycles,
                                 std::uint64_t quantum_cycles,
                                 std::uint64_t context_switch_cycles,
                                 std::uint64_t cache_refill_cycles) {
  ChunkingReport out;
  if (quantum_cycles == 0) quantum_cycles = 1;
  out.chunks = static_cast<std::size_t>(
      (program_cycles + quantum_cycles - 1) / quantum_cycles);
  if (out.chunks == 0) out.chunks = 1;
  const std::uint64_t extras = out.chunks - 1;
  out.switch_overhead_cycles = extras * context_switch_cycles;
  // Each resumption finds its working set evicted by the interleaved user
  // process — the cache-refill cost the paper warns about.
  out.cache_refill_cycles = extras * cache_refill_cycles;
  out.total_cycles =
      program_cycles + out.switch_overhead_cycles + out.cache_refill_cycles;
  return out;
}

PeriodicResult simulate_periodic(const PeriodicConfig& config,
                                 const FaultProcess& fault,
                                 std::size_t trials, Rng& rng) {
  PeriodicResult out;
  out.trials = trials;
  double latency_sum = 0.0;
  double hang_latency_sum = 0.0;

  // Per-kind measured overrides; with the defaults (< 0) these resolve to
  // the config globals and every RNG draw below is unchanged.
  const ModelMeasurement& mm =
      config.measured[static_cast<std::size_t>(fault.kind)];
  const double coverage =
      mm.coverage >= 0 ? mm.coverage : config.fault_coverage;
  const double hang_fraction =
      mm.hang_fraction >= 0 ? mm.hang_fraction : config.hang_fraction;
  const double detect_exec_s =
      mm.detect_exec_s >= 0 ? mm.detect_exec_s : config.test_exec_s;

  for (std::size_t trial = 0; trial < trials; ++trial) {
    // Randomise the fault arrival within one test period so results do not
    // depend on phase alignment.
    FaultProcess f = fault;
    f.arrival_s = fault.arrival_s +
                  static_cast<double>(rng.next32()) / 4294967296.0 *
                      config.test_period_s;

    double t = 0.0;
    std::optional<double> detection;
    bool by_hang = false;
    while (t < config.horizon_s) {
      double launch = t + config.test_period_s;
      if (config.policy == LaunchPolicy::kIdle) {
        // Idle launches jitter uniformly within +/- half a period.
        launch = t + config.test_period_s *
                         (0.5 + static_cast<double>(rng.next32()) /
                                    4294967296.0);
      } else if (config.policy == LaunchPolicy::kStartup) {
        launch = t + config.horizon_s;  // only one run per horizon
      }
      if (launch >= config.horizon_s) break;
      // The test detects the fault if the fault is active while the test
      // executes and the fault lies in the covered set.
      const bool active = fault_active_at(f, launch) ||
                          fault_active_at(f, launch + config.test_exec_s / 2);
      if (active && rng.chance(coverage)) {
        // Symptom detections (hang/trap/wild store) complete when the OS
        // watchdog fires, not when the signature unload would have run.
        // The hang_fraction > 0 gate keeps the legacy draw stream intact
        // when the symptom split is not modelled.
        if (hang_fraction > 0 && rng.chance(hang_fraction)) {
          by_hang = true;
          detection = launch + (config.watchdog_s > 0 ? config.watchdog_s
                                                      : detect_exec_s);
        } else {
          by_hang = false;
          detection = launch + detect_exec_s;
        }
        break;
      }
      t = launch;
    }
    if (detection) {
      ++out.detected;
      const double latency = *detection - f.arrival_s;
      latency_sum += latency;
      out.max_latency_s = std::max(out.max_latency_s, latency);
      if (by_hang) {
        ++out.detected_by_hang;
        hang_latency_sum += latency;
      }
    }
  }

  out.detection_probability =
      trials == 0 ? 0.0
                  : static_cast<double>(out.detected) /
                        static_cast<double>(trials);
  out.mean_latency_s =
      out.detected == 0 ? 0.0 : latency_sum / static_cast<double>(out.detected);
  out.mean_hang_latency_s =
      out.detected_by_hang == 0
          ? 0.0
          : hang_latency_sum / static_cast<double>(out.detected_by_hang);
  out.cpu_overhead = config.policy == LaunchPolicy::kStartup
                         ? config.test_exec_s / config.horizon_s
                         : config.test_exec_s / config.test_period_s;
  return out;
}

std::vector<PeriodicResult> simulate_periodic_campaign(
    fault::ThreadPool& pool, const PeriodicConfig& config,
    const std::vector<FaultProcess>& faults, std::size_t trials,
    std::uint64_t seed) {
  std::vector<PeriodicResult> out(faults.size());
  pool.run_static(faults.size(), [&](std::size_t i) {
    // Golden-ratio stream split: fault i always sees the same draws no
    // matter which worker runs it or how many workers exist.
    Rng rng(seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
    out[i] = simulate_periodic(config, faults[i], trials, rng);
  });
  return out;
}

}  // namespace sbst::core
