// The comparison baseline the paper argues against (§1, refs [5]-[7]):
// functional SBST from randomized instruction sequences (Shen/Abraham
// native-mode style, Batcher/Papachristou instruction randomization,
// Parvathala's FRITS).
//
// make_random_instruction_routine generates a valid, self-contained random
// instruction sequence over a sandboxed register set and data window, then
// dumps the touched registers through the shared software MISR. The paper's
// claim this baseline substantiates: such programs have low development
// cost but need *large* instruction counts (and hence memory footprint and
// execution time) to approach the coverage a structural SBST program gets
// from a few hundred words — making them unsuitable for on-line periodic
// testing.
#pragma once

#include <cstdint>

#include "core/codegen.hpp"

namespace sbst::core {

struct RandomProgramOptions {
  std::size_t instruction_count = 2048;
  std::uint64_t seed = 1;
  /// Byte address / size of the load-store sandbox window.
  std::uint32_t data_base = 0x40000;
  std::uint32_t data_bytes = 256;
  /// Fraction of instructions drawn from each group (rest becomes R-type
  /// arithmetic). Branches are always forward with bounded skip, so the
  /// program provably terminates.
  double shift_fraction = 0.15;
  double muldiv_fraction = 0.08;
  double memory_fraction = 0.12;
  double branch_fraction = 0.08;
  double immediate_fraction = 0.20;
};

/// Generates the functional-baseline routine. The routine is deterministic
/// in `options.seed`, never raises an exception (aligned sandboxed memory
/// accesses only), always terminates, and unloads one signature.
Routine make_random_instruction_routine(const RandomProgramOptions& options,
                                        const CodegenOptions& codegen = {});

}  // namespace sbst::core
