#include "core/tpg.hpp"

#include "common/bits.hpp"
#include "rtlgen/control.hpp"

namespace sbst::core {

using rtlgen::AluOp;
using rtlgen::MemSize;
using rtlgen::ShiftOp;

namespace {

struct Masks {
  std::uint32_t ones, c5, ca, c3, cc, c0f, cf0, msb, maxpos;
  explicit Masks(unsigned w)
      : ones(static_cast<std::uint32_t>(low_mask(w))),
        c5(0x55555555u & ones),
        ca(0xaaaaaaaau & ones),
        c3(0x33333333u & ones),
        cc(0xccccccccu & ones),
        c0f(0x0f0f0f0fu & ones),
        cf0(0xf0f0f0f0u & ones),
        msb(std::uint32_t{1} << (w - 1)),
        maxpos(ones >> 1) {}
};

}  // namespace

std::vector<AluOpnd> regular_alu_tests(unsigned width) {
  const Masks m(width);
  std::vector<AluOpnd> t;

  // Per-bit truth tables of the logic unit: 4 combos + checkerboards that
  // also exercise the result-mux select paths.
  for (AluOp op : {AluOp::kAnd, AluOp::kOr, AluOp::kXor, AluOp::kNor}) {
    t.push_back({op, 0, 0});
    t.push_back({op, 0, m.ones});
    t.push_back({op, m.ones, 0});
    t.push_back({op, m.ones, m.ones});
    t.push_back({op, m.c5, m.ca});
    t.push_back({op, m.ca, m.c5});
  }

  // Adder constants: generate/propagate/kill in every position.
  for (auto [a, b] : std::initializer_list<std::pair<std::uint32_t,
                                                     std::uint32_t>>{
           {0, 0}, {m.ones, 1}, {1, m.ones}, {m.c5, m.c5}, {m.ca, m.ca},
           {m.c3, m.c3}, {m.cc, m.cc}, {m.c0f, m.cf0}, {m.ones, m.ones},
           {m.maxpos, 1}, {m.msb, m.msb}}) {
    t.push_back({AluOp::kAdd, a, b});
  }

  // Subtractor constants: borrow chains + B-inversion mux.
  for (auto [a, b] : std::initializer_list<std::pair<std::uint32_t,
                                                     std::uint32_t>>{
           {0, 0}, {0, 1}, {m.c5, m.ca}, {m.ca, m.c5}, {m.ones, m.ones},
           {0, m.ones}, {m.ones, 0}, {m.msb, 1}}) {
    t.push_back({AluOp::kSub, a, b});
  }

  // Comparison corners: sign/overflow discrimination of slt vs sltu.
  for (AluOp op : {AluOp::kSlt, AluOp::kSltu}) {
    t.push_back({op, 0, 0});
    t.push_back({op, 1, 0});
    t.push_back({op, 0, 1});
    t.push_back({op, m.msb, m.maxpos});
    t.push_back({op, m.maxpos, m.msb});
    t.push_back({op, m.ones, 0});
    t.push_back({op, 0, m.ones});
    t.push_back({op, m.c5, m.ca});
  }

  // Linear families (the Figure 4 loop bodies): per-bit carry generate,
  // carry propagate into each bit, borrow through each bit, and carry
  // chains of every prefix length (distinguishes the individual propagate
  // terms of lookahead implementations).
  for (unsigned i = 0; i < width; ++i) {
    const std::uint32_t bit = std::uint32_t{1} << i;
    t.push_back({AluOp::kAdd, bit, bit});
    t.push_back({AluOp::kAdd, m.ones, bit});
    t.push_back({AluOp::kSub, 0, bit});
    t.push_back({AluOp::kAdd, static_cast<std::uint32_t>(low_mask(i + 1)), 1});
    // Carry chain with a single kill ("hole") at bit i: distinguishes each
    // propagate input of lookahead product terms (stuck-true p_k).
    t.push_back({AluOp::kAdd, m.ones ^ bit, 1});
    // Generate at bit i, propagate through everything above it.
    t.push_back({AluOp::kAdd, m.ones & ~static_cast<std::uint32_t>(
                                  low_mask(i)),
                 bit});
  }
  return t;
}

std::vector<ShiftOpnd> regular_shifter_tests(unsigned width) {
  const Masks m(width);
  std::vector<ShiftOpnd> t;
  const std::uint32_t corner = (m.msb | 1u) & m.ones;
  for (ShiftOp op : {ShiftOp::kSll, ShiftOp::kSrl, ShiftOp::kSra}) {
    for (unsigned s = 0; s < width; ++s) {
      t.push_back({op, m.c5, static_cast<std::uint8_t>(s)});
      t.push_back({op, m.ca, static_cast<std::uint8_t>(s)});
      t.push_back({op, corner, static_cast<std::uint8_t>(s)});
    }
  }
  return t;
}

std::vector<MulOpnd> regular_multiplier_tests(unsigned width) {
  const Masks m(width);
  std::vector<MulOpnd> t;
  for (unsigned i = 0; i < width; ++i) {
    const std::uint32_t bit = std::uint32_t{1} << i;
    t.push_back({bit, m.ones});  // one full row of partial products
    t.push_back({m.ones, bit});  // one full column
    t.push_back({bit, bit});     // diagonal
  }
  for (auto [a, b] : std::initializer_list<std::pair<std::uint32_t,
                                                     std::uint32_t>>{
           {0, 0}, {1, 1}, {m.ones, m.ones}, {m.c5, m.c5}, {m.ca, m.ca},
           {m.c5, m.ca}, {m.ca, m.c5}, {m.c3, m.cc}, {m.cc, m.c3},
           {m.msb, m.msb}, {m.ones, 1}, {1, m.ones}, {m.c0f, m.cf0}}) {
    t.push_back({a, b});
  }
  return t;
}

std::vector<DivOpnd> regular_divider_tests(unsigned width) {
  const Masks m(width);
  std::vector<DivOpnd> t;
  t.push_back({m.ones, 1});  // all-ones quotient
  for (unsigned i = 0; i < width; ++i) {
    const std::uint32_t bit = std::uint32_t{1} << i;
    t.push_back({bit, 1});       // walking dividend
    t.push_back({m.ones, bit});  // walking divisor
    // Walking remainder: dividend < divisor leaves R = dividend, setting
    // every prefix pattern in the remainder register.
    t.push_back({static_cast<std::uint32_t>(low_mask(i + 1)), m.ones});
  }
  for (auto [a, b] : std::initializer_list<std::pair<std::uint32_t,
                                                     std::uint32_t>>{
           {0, 1}, {5, 0}, {m.ones, m.ones}, {1, m.ones}, {m.msb, 3},
           {m.c5, m.ca}, {m.ca, m.c5}, {m.c5, 7}, {100, 7},
           {m.ones ^ 1u, m.ones}, {m.ca, 3}, {m.c5, m.c5}}) {
    t.push_back({a, b});
  }
  return t;
}

std::vector<RegFileOp> regular_regfile_tests(unsigned num_regs) {
  std::vector<RegFileOp> ops;
  // Checkerboard pair per register, read back through both ports.
  for (std::uint32_t pattern : {0x55555555u, 0xaaaaaaaau}) {
    for (unsigned r = 1; r < num_regs; ++r) {
      ops.push_back({.write = true, .addr = static_cast<std::uint8_t>(r),
                     .data = pattern});
      ops.push_back({.write = false, .addr = static_cast<std::uint8_t>(r),
                     .data = 0,
                     .raddr2 = static_cast<std::uint8_t>(num_regs - r)});
    }
  }
  // Unique value per register, then read all: catches decoder faults that
  // alias two registers (a checkerboard alone cannot). The multiplicative
  // hash makes every data bit differ between any two registers.
  auto unique = [](unsigned r) { return 0x9e3779b9u * r + 0x01010101u; };
  for (unsigned r = 1; r < num_regs; ++r) {
    ops.push_back({.write = true, .addr = static_cast<std::uint8_t>(r),
                   .data = unique(r)});
  }
  for (unsigned r = 1; r < num_regs; ++r) {
    ops.push_back({.write = false, .addr = static_cast<std::uint8_t>(r),
                   .data = 0,
                   .raddr2 = static_cast<std::uint8_t>(r ^ 1u)});
  }
  // Second pass in descending write order with complemented data: a
  // decoder alias toward a *higher* register survives an ascending pass
  // (the later write overwrites the evidence) but not a descending one.
  for (unsigned r = num_regs - 1; r >= 1; --r) {
    ops.push_back({.write = true, .addr = static_cast<std::uint8_t>(r),
                   .data = ~unique(r)});
  }
  for (unsigned r = 1; r < num_regs; ++r) {
    ops.push_back({.write = false, .addr = static_cast<std::uint8_t>(r),
                   .data = 0,
                   .raddr2 = static_cast<std::uint8_t>(
                       (r + num_regs / 2) % num_regs)});
  }
  for (unsigned r = 1; r < num_regs; ++r) {
    ops.push_back({.write = false,
                   .addr = static_cast<std::uint8_t>(num_regs - 1 - r),
                   .data = 0,
                   .raddr2 = static_cast<std::uint8_t>(r)});
  }
  return ops;
}

std::vector<MemOpnd> regular_memctrl_tests() {
  std::vector<MemOpnd> t;
  for (std::uint32_t data : {0x55555555u, 0xaaaaaaaau, 0xffffffffu, 0u}) {
    t.push_back({MemSize::kWord, false, true, 0, data});
    t.push_back({MemSize::kWord, false, false, 0, data});
  }
  for (std::uint8_t off = 0; off < 4; ++off) {
    t.push_back({MemSize::kByte, false, true, off, 0x55u});
    t.push_back({MemSize::kByte, false, true, off, 0xaau});
    t.push_back({MemSize::kByte, true, false, off, 0xa5a5a5a5u});  // lb sign
    t.push_back({MemSize::kByte, false, false, off, 0xa5a5a5a5u});
    t.push_back({MemSize::kByte, true, false, off, 0x5a5a5a5au});
  }
  for (std::uint8_t off : {std::uint8_t{0}, std::uint8_t{2}}) {
    t.push_back({MemSize::kHalf, false, true, off, 0x5555u});
    t.push_back({MemSize::kHalf, false, true, off, 0xaaaau});
    t.push_back({MemSize::kHalf, true, false, off, 0x8000ffffu});
    t.push_back({MemSize::kHalf, false, false, off, 0x7fff8000u});
    t.push_back({MemSize::kHalf, true, false, off, 0x55aa55aau});
  }
  return t;
}

// ---- lowering ---------------------------------------------------------------

fault::PatternSet alu_pattern_set(const netlist::Netlist& alu,
                                  const std::vector<AluOpnd>& tests) {
  fault::PatternSet ps(alu);
  for (const AluOpnd& t : tests) {
    ps.add({{"a", t.a},
            {"b", t.b},
            {"op", static_cast<std::uint64_t>(t.op)}});
  }
  return ps;
}

fault::PatternSet shifter_pattern_set(const netlist::Netlist& shifter,
                                      const std::vector<ShiftOpnd>& tests) {
  fault::PatternSet ps(shifter);
  for (const ShiftOpnd& t : tests) {
    ps.add({{"a", t.value},
            {"shamt", t.shamt},
            {"op", static_cast<std::uint64_t>(t.op)}});
  }
  return ps;
}

fault::PatternSet multiplier_pattern_set(const netlist::Netlist& mul,
                                         const std::vector<MulOpnd>& tests) {
  fault::PatternSet ps(mul);
  for (const MulOpnd& t : tests) {
    ps.add({{"a", t.a}, {"b", t.b}});
  }
  return ps;
}

fault::SeqStimulus divider_stimulus(const netlist::Netlist& divider,
                                    const std::vector<DivOpnd>& tests,
                                    unsigned width) {
  fault::SeqStimulus seq(divider);
  for (const DivOpnd& t : tests) {
    seq.add_cycle({{"start", 1},
                   {"dividend", t.dividend},
                   {"divisor", t.divisor}},
                  false);
    for (unsigned i = 0; i < width; ++i) {
      seq.add_cycle({{"start", 0}}, false);
    }
    // Results are read by mflo/mfhi after completion; holding for several
    // observed idle cycles also exercises the recirculation muxes of the
    // state registers.
    seq.add_cycle({{"start", 0}}, true);
    seq.add_cycle({{"start", 0}}, true);
    seq.add_cycle({{"start", 0}}, true);
  }
  return seq;
}

fault::SeqStimulus regfile_stimulus(const netlist::Netlist& regfile,
                                    const std::vector<RegFileOp>& ops) {
  fault::SeqStimulus seq(regfile);
  for (const RegFileOp& op : ops) {
    if (op.write) {
      seq.add_cycle({{"waddr", op.addr},
                     {"wdata", op.data},
                     {"wen", 1},
                     {"raddr1", 0},
                     {"raddr2", 0}},
                    false);
    } else {
      seq.add_cycle({{"wen", 0},
                     {"raddr1", op.addr},
                     {"raddr2", op.raddr2}},
                    true);
    }
  }
  return seq;
}

fault::SeqStimulus memctrl_stimulus(const netlist::Netlist& memctrl,
                                    const std::vector<MemOpnd>& tests) {
  fault::SeqStimulus seq(memctrl);
  for (const MemOpnd& t : tests) {
    // Issue cycle: capture MAR/MDR/byte enables.
    seq.add_cycle({{"addr", t.offset},
                   {"wdata", t.write ? t.data : 0},
                   {"size", static_cast<std::uint64_t>(t.size)},
                   {"sign", t.sign ? 1 : 0},
                   {"wr", t.write ? 1 : 0},
                   {"en", 1}},
                  false);
    // Response cycle: memory word returns (loads) / registered store
    // outputs observed.
    seq.add_cycle({{"mem_rdata", t.write ? 0 : t.data},
                   {"size", static_cast<std::uint64_t>(t.size)},
                   {"sign", t.sign ? 1 : 0},
                   {"en", 0}},
                  true);
  }
  return seq;
}

fault::PatternSet control_pattern_set(const netlist::Netlist& control) {
  fault::PatternSet ps(control);
  for (const rtlgen::OpcodePair& ins : rtlgen::all_instruction_opcodes()) {
    ps.add({{"opcode", ins.opcode}, {"funct", ins.funct}});
  }
  return ps;
}

}  // namespace sbst::core
