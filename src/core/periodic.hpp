// On-line periodic testing model (paper §1–§2 and the E3 experiment).
//
// Models the embedded system at the scheduling level: a round-robin OS with
// quantum Q runs user processes; the SBST program (execution time t_test,
// from the evaluated program) is launched by one of the paper's three
// policies. Operational faults arrive as permanent, intermittent (active
// with a duty cycle) or transient processes; a test run detects a fault iff
// the fault is active during the run (the SBST program's measured fault
// coverage scales the detection probability).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault.hpp"

namespace sbst::fault {
class ThreadPool;
}

namespace sbst::core {

enum class FaultKind {
  kPermanent,     // active from arrival onwards
  kIntermittent,  // active `active_s` out of every `period_s` seconds
  kTransient,     // active once for `active_s` seconds
};

struct FaultProcess {
  FaultKind kind = FaultKind::kPermanent;
  double arrival_s = 0.0;
  double period_s = 0.0;  // intermittent: activation period
  double active_s = 0.0;  // intermittent/transient: active duration
};

inline constexpr std::size_t kFaultKinds = 3;

/// Gate-level fault model whose measured grading feeds an operational fault
/// kind: a permanent operational fault is a stuck-at at the gate level, an
/// intermittent process maps to the duty-cycled intermittent model, and a
/// transient process to the single-event-upset model.
inline fault::FaultModel fault_model_for(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPermanent: return fault::FaultModel::kStuckAt;
    case FaultKind::kIntermittent: return fault::FaultModel::kIntermittent;
    case FaultKind::kTransient: return fault::FaultModel::kTransientSEU;
  }
  return fault::FaultModel::kStuckAt;
}

/// Measured grading results for one fault model — an injection campaign's
/// coverage and symptom split plus the detection-completion time — consumed
/// by the scheduling model for the matching operational fault kind. Negative
/// fields fall back to the corresponding PeriodicConfig global, so a
/// default-constructed measurement changes nothing (including the RNG draw
/// stream).
struct ModelMeasurement {
  double coverage = -1.0;       // overrides PeriodicConfig::fault_coverage
  double hang_fraction = -1.0;  // overrides PeriodicConfig::hang_fraction
  double detect_exec_s = -1.0;  // overrides test_exec_s for detection latency
};

/// Launch policies of paper §2.
enum class LaunchPolicy {
  kTimer,    // programmable timer: every test_period_s
  kIdle,     // scheduler idle slots: uniformly jittered around the period
  kStartup,  // only at system startup/shutdown boundaries (period = uptime)
};

struct PeriodicConfig {
  double quantum_s = 0.2;       // paper: a few hundred ms
  double test_exec_s = 200e-6;  // from the evaluated SBST program
  double test_period_s = 1.0;   // timer period between test launches
  LaunchPolicy policy = LaunchPolicy::kTimer;
  double fault_coverage = 0.956;  // probability a present fault is caught
  double horizon_s = 3600.0;      // simulated wall-clock per trial
  /// Fraction of detections that manifest as a symptom the OS watchdog
  /// catches (hang / trap / wild store) instead of a signature mismatch —
  /// measured by an injection campaign's OutcomeHistogram
  /// (detected_by_symptom() / detected()). 0 keeps the legacy
  /// signature-only model and leaves the RNG draw stream untouched.
  double hang_fraction = 0.0;
  /// Detection-completion time for a symptom detection: the watchdog kills
  /// the overrunning test after this budget instead of waiting for the
  /// signature unload. <= 0 falls back to test_exec_s.
  double watchdog_s = 0.0;
  /// Per-fault-kind measured overrides (indexed by FaultKind), fed from
  /// per-model injection campaigns: a transient operational fault is graded
  /// by the transient-SEU campaign, not the stuck-at one. All fields
  /// negative (the default) keeps the global knobs above authoritative.
  std::array<ModelMeasurement, kFaultKinds> measured{};
};

struct PeriodicResult {
  std::size_t trials = 0;
  std::size_t detected = 0;
  double detection_probability = 0.0;
  double mean_latency_s = 0.0;   // arrival -> detection (detected trials)
  double max_latency_s = 0.0;
  double cpu_overhead = 0.0;     // fraction of CPU time spent testing
  /// Detections that completed via the watchdog (subset of `detected`);
  /// their latency is accounted separately because the watchdog budget, not
  /// the signature unload, ends the run.
  std::size_t detected_by_hang = 0;
  double mean_hang_latency_s = 0.0;  // 0 when detected_by_hang == 0
};

/// Monte-Carlo estimate of detection probability and latency for a fault
/// class under a launch policy.
PeriodicResult simulate_periodic(const PeriodicConfig& config,
                                 const FaultProcess& fault,
                                 std::size_t trials, Rng& rng);

/// Campaign form: one Monte-Carlo simulation per fault process, scheduled
/// as independent tasks on `pool`. Each fault draws from its own
/// deterministic stream seeded from (`seed`, fault index), so results are
/// in fault order and bitwise-identical for any thread count (they differ
/// from threading `seed` through one shared sequential Rng).
std::vector<PeriodicResult> simulate_periodic_campaign(
    fault::ThreadPool& pool, const PeriodicConfig& config,
    const std::vector<FaultProcess>& faults, std::size_t trials,
    std::uint64_t seed);

/// Closed-form checks used by tests:
///  - permanent faults: detection probability -> coverage, latency <= period
///  - intermittent faults: per-test hit probability ~ duty cycle
double expected_permanent_latency(const PeriodicConfig& config);
double intermittent_duty_cycle(const FaultProcess& fault);

/// Whether `fault` is active at absolute time t (arrival-relative phase 0).
bool fault_active_at(const FaultProcess& fault, double t);

/// Quantum chunking (paper §2): "it is possible to have test program
/// execution span over more than one quantum time, [but] this will lead to
/// further system operation overhead due to larger context switch
/// overheads." Splits a test of `program_cycles` into quantum-sized chunks
/// and accounts the extra cost: one context switch plus a cache refill per
/// extra chunk.
struct ChunkingReport {
  std::size_t chunks = 1;
  std::uint64_t switch_overhead_cycles = 0;
  std::uint64_t cache_refill_cycles = 0;
  std::uint64_t total_cycles = 0;  // program + overheads

  double overhead_fraction() const {
    const std::uint64_t extra = switch_overhead_cycles + cache_refill_cycles;
    return total_cycles == 0
               ? 0.0
               : static_cast<double>(extra) /
                     static_cast<double>(total_cycles);
  }
};

ChunkingReport chunked_execution(std::uint64_t program_cycles,
                                 std::uint64_t quantum_cycles,
                                 std::uint64_t context_switch_cycles,
                                 std::uint64_t cache_refill_cycles);

}  // namespace sbst::core
