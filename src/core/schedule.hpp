// Instruction scheduling for processors without forwarding.
//
// Paper §3.3: "We remark that in any case nop instructions are inserted
// accordingly when forwarding is not supported." This pass analyses a
// routine's assembly, finds read-after-write pairs closer than the pipeline
// depth, and inserts the minimum nops so the routine still runs stall-free
// on a CpuConfig{forwarding = false} machine.
//
// Scope: the structured code the generators emit — straight-line blocks,
// subroutine calls (jal + delay slot, treated as scheduling barriers), and
// the Figure-4 loop shapes. Branch/delay-slot pairs are never split; nops
// are hoisted above the branch when its delay slot needs distance.
#pragma once

#include <cstddef>
#include <string>

#include "core/codegen.hpp"

namespace sbst::core {

struct ScheduleResult {
  std::string assembly;
  std::size_t nops_inserted = 0;
};

/// `min_distance` is the producer->consumer instruction distance that needs
/// no stall: 3 for the 3-stage pipeline without forwarding (distance 1
/// costs 2 stalls, distance 2 costs 1).
ScheduleResult insert_nops_for_no_forwarding(const std::string& assembly,
                                             unsigned min_distance = 3);

/// Convenience: reschedules a whole routine (code only; data untouched).
Routine schedule_routine(Routine routine, unsigned min_distance = 3);

}  // namespace sbst::core
