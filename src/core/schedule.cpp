#include "core/schedule.hpp"

#include <cctype>
#include <optional>
#include <vector>

#include "isa/encoding.hpp"

namespace sbst::core {

namespace {

struct LineInfo {
  std::string text;
  bool is_instruction = false;
  bool is_branch = false;   // next instruction is its delay slot
  bool is_barrier = false;  // jal/jr/break: window resets after it
  int writes = -1;          // architectural register or -1
  int reads[2] = {-1, -1};
};

std::string trim(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

std::vector<std::string> operands_of(const std::string& rest) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (char c : rest) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!trim(cur).empty()) out.push_back(trim(cur));
  return out;
}

int reg_of(const std::string& token) {
  const auto r = isa::parse_register(token);
  return r ? static_cast<int>(*r) : -1;
}

int base_reg_of(const std::string& mem_operand) {
  const std::size_t open = mem_operand.find('(');
  const std::size_t close = mem_operand.find(')');
  if (open == std::string::npos || close == std::string::npos) return -1;
  return reg_of(trim(mem_operand.substr(open + 1, close - open - 1)));
}

LineInfo classify(const std::string& raw) {
  LineInfo info;
  info.text = raw;
  const std::string line = trim(raw);
  if (line.empty() || line[0] == '#' || line.back() == ':' ||
      line[0] == '.') {
    return info;  // blank / comment / label / directive
  }
  info.is_instruction = true;
  const std::size_t sp = line.find_first_of(" \t");
  const std::string m = line.substr(0, sp);
  const auto ops =
      sp == std::string::npos ? std::vector<std::string>{}
                              : operands_of(line.substr(sp + 1));
  auto op_reg = [&](std::size_t i) {
    return i < ops.size() ? reg_of(ops[i]) : -1;
  };

  if (m == "add" || m == "addu" || m == "sub" || m == "subu" || m == "and" ||
      m == "or" || m == "xor" || m == "nor" || m == "slt" || m == "sltu" ||
      m == "sllv" || m == "srlv" || m == "srav") {
    info.writes = op_reg(0);
    info.reads[0] = op_reg(1);
    info.reads[1] = op_reg(2);
  } else if (m == "sll" || m == "srl" || m == "sra") {
    info.writes = op_reg(0);
    info.reads[0] = op_reg(1);
  } else if (m == "addi" || m == "addiu" || m == "slti" || m == "sltiu" ||
             m == "andi" || m == "ori" || m == "xori") {
    info.writes = op_reg(0);
    info.reads[0] = op_reg(1);
  } else if (m == "lui" || m == "li" || m == "la") {
    info.writes = op_reg(0);
  } else if (m == "move") {
    info.writes = op_reg(0);
    info.reads[0] = op_reg(1);
  } else if (m == "lw" || m == "lb" || m == "lbu" || m == "lh" ||
             m == "lhu") {
    info.writes = op_reg(0);
    info.reads[0] = ops.size() > 1 ? base_reg_of(ops[1]) : -1;
  } else if (m == "sw" || m == "sb" || m == "sh") {
    info.reads[0] = op_reg(0);
    info.reads[1] = ops.size() > 1 ? base_reg_of(ops[1]) : -1;
  } else if (m == "beq" || m == "bne") {
    info.is_branch = true;
    info.reads[0] = op_reg(0);
    info.reads[1] = op_reg(1);
  } else if (m == "b" || m == "j") {
    info.is_branch = true;
  } else if (m == "jal") {
    info.is_branch = true;
    info.is_barrier = true;  // the callee settles every older write
    info.writes = isa::kRa;
  } else if (m == "jr") {
    info.is_branch = true;
    info.is_barrier = true;
    info.reads[0] = op_reg(0);
  } else if (m == "mult" || m == "multu" || m == "div" || m == "divu") {
    info.reads[0] = op_reg(0);
    info.reads[1] = op_reg(1);
  } else if (m == "mfhi" || m == "mflo") {
    info.writes = op_reg(0);  // HI/LO handled by the md interlock, not nops
  } else if (m == "mthi" || m == "mtlo") {
    info.reads[0] = op_reg(0);
  } else if (m == "nop" || m == "break") {
    if (m == "break") info.is_barrier = true;
  }
  if (info.writes == 0) info.writes = -1;  // $zero writes vanish
  return info;
}

// li/la expanding to lui+ori carry an *internal* RAW hazard (the ori reads
// the register the lui just wrote). Splitting them into explicit lui/ori —
// with %hi/%lo for symbolic operands — lets the window logic below space
// them like any other pair.
std::vector<LineInfo> expand_li(const LineInfo& info) {
  const std::string line = trim(info.text);
  const std::size_t sp = line.find_first_of(" \t");
  const std::string m = line.substr(0, sp);
  if (m != "li" && m != "la") return {info};
  const auto ops = operands_of(line.substr(sp + 1));
  if (ops.size() != 2) return {info};
  const std::string& rd = ops[0];
  const std::string& value = ops[1];

  const bool numeric =
      !value.empty() &&
      (std::isdigit(static_cast<unsigned char>(value[0])) ||
       ((value[0] == '-' || value[0] == '+') && value.size() > 1 &&
        std::isdigit(static_cast<unsigned char>(value[1]))));
  if (numeric) {
    const std::uint32_t v = static_cast<std::uint32_t>(
        std::strtoll(value.c_str(), nullptr, 0));
    const std::int32_t sv = static_cast<std::int32_t>(v);
    const bool single = v <= 0xffff || (sv >= -0x8000 && sv < 0) ||
                        (v & 0xffffu) == 0;
    if (single) return {info};  // one machine instruction: no internal RAW
    char buf[64];
    std::vector<LineInfo> out;
    std::snprintf(buf, sizeof buf, "  lui  %s, 0x%x", rd.c_str(), v >> 16);
    out.push_back(classify(buf));
    std::snprintf(buf, sizeof buf, "  ori  %s, %s, 0x%x", rd.c_str(),
                  rd.c_str(), v & 0xffffu);
    out.push_back(classify(buf));
    return out;
  }
  // Symbolic: the assembler always emits lui+ori; mirror it with %hi/%lo.
  std::vector<LineInfo> out;
  out.push_back(classify("  lui  " + rd + ", %hi(" + value + ")"));
  out.push_back(classify("  ori  " + rd + ", " + rd + ", %lo(" + value +
                         ")"));
  return out;
}

}  // namespace

ScheduleResult insert_nops_for_no_forwarding(const std::string& assembly,
                                             unsigned min_distance) {
  // Split into lines, classify (expanding li/la), then walk with a window
  // of the last (min_distance - 1) written registers.
  std::vector<LineInfo> lines;
  std::size_t pos = 0;
  while (pos <= assembly.size()) {
    const std::size_t eol = assembly.find('\n', pos);
    const std::string line = assembly.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? assembly.size() + 1 : eol + 1;
    if (!(line.empty() && pos > assembly.size())) {
      for (LineInfo& li : expand_li(classify(line))) {
        lines.push_back(std::move(li));
      }
    }
  }

  ScheduleResult out;
  // window[d] = register written d+1 instructions ago (-1 if none).
  std::vector<int> window(min_distance > 1 ? min_distance - 1 : 0, -1);
  auto push_window = [&](int written) {
    if (window.empty()) return;
    for (std::size_t d = window.size(); d-- > 1;) window[d] = window[d - 1];
    window[0] = written;
  };
  auto hazard_distance = [&](const LineInfo& info) -> std::optional<unsigned> {
    for (std::size_t d = 0; d < window.size(); ++d) {
      if (window[d] < 0) continue;
      if (info.reads[0] == window[d] || info.reads[1] == window[d]) {
        return static_cast<unsigned>(d);
      }
    }
    return std::nullopt;
  };

  std::string result;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const LineInfo& info = lines[i];
    if (!info.is_instruction) {
      result += info.text + "\n";
      continue;
    }

    // The delay slot rides with its branch: resolve both hazards by
    // inserting nops *before the branch*, then emit the pair.
    const bool has_slot = info.is_branch && i + 1 < lines.size() &&
                          lines[i + 1].is_instruction;
    unsigned needed = 0;
    if (const auto d = hazard_distance(info)) {
      needed = std::max(needed, static_cast<unsigned>(window.size() - *d));
    }
    if (has_slot) {
      // From the slot's perspective the branch sits between it and the
      // window, adding one slot of distance.
      for (std::size_t d = 0; d + 1 < window.size(); ++d) {
        if (window[d] < 0) continue;
        if (lines[i + 1].reads[0] == window[d] ||
            lines[i + 1].reads[1] == window[d]) {
          needed = std::max(
              needed, static_cast<unsigned>(window.size() - 1 - d));
        }
      }
    }
    for (unsigned n = 0; n < needed; ++n) {
      result += "  nop\n";
      ++out.nops_inserted;
      push_window(-1);
    }

    result += info.text + "\n";
    push_window(info.is_barrier ? -1 : info.writes);
    if (info.is_barrier) std::fill(window.begin(), window.end(), -1);
    if (has_slot) {
      result += lines[i + 1].text + "\n";
      push_window(lines[i + 1].writes);
      if (info.is_barrier) {
        // Returning from a call: everything older has long retired.
        std::fill(window.begin(), window.end(), -1);
      }
      ++i;
    }
  }
  out.assembly = std::move(result);
  return out;
}

Routine schedule_routine(Routine routine, unsigned min_distance) {
  ScheduleResult r =
      insert_nops_for_no_forwarding(routine.assembly, min_distance);
  routine.assembly = std::move(r.assembly);
  routine.style += " +nops";
  return routine;
}

}  // namespace sbst::core
