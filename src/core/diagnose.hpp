// Signature-based error identification (paper §4: "At the end of periodic
// testing 7 signatures, one for every CUT, are unloaded to data memory for
// fault detection").
//
// Because each routine unloads its own signature word, the *pattern* of
// mismatching words localises the defect: a multiplier fault flips only the
// multiplier routine's signature, while an ALU fault — the ALU computes the
// li/ori constants of every routine — flips nearly all of them. diagnose()
// turns a signature comparison into a ranked suspect list using exactly
// that reasoning.
#pragma once

#include <cstdint>
#include <vector>

#include "core/inject.hpp"
#include "core/program.hpp"

namespace sbst::core {

struct Diagnosis {
  /// Signature slots whose words mismatch, in slot order.
  std::vector<unsigned> failing_slots;
  /// CUTs implicated, most specific first:
  ///  - exactly one failing slot -> that routine's target component;
  ///  - several failing slots -> a shared resource; the ALU (address/imm
  ///    computation) and register file (every operand) lead the list,
  ///    followed by each failing routine's own target.
  std::vector<CutId> suspects;

  bool fault_detected() const { return !failing_slots.empty(); }
};

Diagnosis diagnose(const TestProgram& program,
                   const std::vector<std::uint32_t>& good_signatures,
                   const std::vector<std::uint32_t>& observed_signatures);

/// End-to-end injection + diagnosis for one fault.
struct InjectionDiagnosis {
  InjectionOutcome outcome;
  Diagnosis diagnosis;
};

/// Injects every fault of `faults` into `target` (per-fault faulty runs on
/// the session pool, see run_injection_campaign) and diagnoses each
/// signature comparison. Results in fault order, bitwise-deterministic for
/// any thread count. A kInfraError outcome has no faulty signatures to
/// compare, so its diagnosis is empty (no failing slots, no suspects).
std::vector<InjectionDiagnosis> diagnose_campaign(
    GradingSession& session, const TestProgram& program, CutId target,
    const std::vector<fault::Fault>& faults,
    const sim::CpuConfig& config = {}, const InjectOptions& inject = {});

}  // namespace sbst::core
