// March memory-test algorithms applied to the register file.
//
// The paper tests the register file with a checkerboard pair plus the
// two-phase trick; the memory-test literature's standard answer to the
// same problem is a March algorithm (MATS+, March X, March C-). This
// module provides both, with the same SBST constraints honoured: the
// register file is swept half at a time so the other half can hold the
// MISR state, and reads are observed through instruction operands.
//
// March notation: each element walks the address space up (⇑), down (⇓) or
// in either order (⇕), performing its operation string on every cell, e.g.
// March C-:  ⇕(w0) ⇑(r0,w1) ⇑(r1,w0) ⇓(r0,w1) ⇓(r1,w0) ⇕(r0).
// For a word-oriented register file the 0/1 cell values become data
// backgrounds (0x00000000/0xffffffff, 0x55555555/0xaaaaaaaa, ...).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/codegen.hpp"
#include "core/tpg.hpp"

namespace sbst::core {

enum class MarchOp : std::uint8_t { kR0, kW0, kR1, kW1 };
enum class MarchOrder : std::uint8_t { kUp, kDown, kEither };

struct MarchElement {
  MarchOrder order;
  std::vector<MarchOp> ops;
};

struct MarchAlgorithm {
  std::string name;
  std::vector<MarchElement> elements;
  /// Operation count per cell (the classical complexity metric, e.g. 10n
  /// for March C-).
  std::size_t ops_per_cell() const;
};

const MarchAlgorithm& mats_plus();  // 4n
const MarchAlgorithm& march_x();    // 6n
const MarchAlgorithm& march_c_minus();  // 10n

/// Lowers a March algorithm onto the register-file netlist as a sequential
/// stimulus, sweeping registers first..last with the given data
/// backgrounds (each background contributes a full pass; its complement is
/// the "1" value).
fault::SeqStimulus march_regfile_stimulus(
    const netlist::Netlist& regfile, const MarchAlgorithm& algorithm,
    unsigned first, unsigned last,
    const std::vector<std::uint32_t>& backgrounds = {0x00000000u,
                                                     0x55555555u});

/// Generates a self-test routine running the March algorithm over the
/// register file in the paper's two-phase arrangement (low half swept with
/// the MISR in high registers, then vice versa).
Routine make_march_regfile_routine(const MarchAlgorithm& algorithm,
                                   const CodegenOptions& opts,
                                   std::uint32_t background = 0x55555555u);

}  // namespace sbst::core
