// Processor component model and classification — Phase A and Phase B of the
// paper's SBST methodology (§3.1, §3.2).
//
// Phase A (information extraction) is embodied in the static metadata each
// component carries: which instructions excite it, and how its inputs are
// controlled / outputs observed from assembly.
// Phase B is the classification scheme itself: Visible (data / address /
// mixed), Partially Visible, Hidden — with test priority derived from it
// (D-VCs first: highest testability, dominant area, cache-friendly tests).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace sbst::core {

/// Paper §3.2 classification.
enum class ComponentClass {
  kDataVisible,       // D-VC: operands/results reachable via data registers
  kAddressVisible,    // A-VC: inputs/outputs are memory addresses
  kMixedVisible,      // M-VC: both (e.g. the PC-relative adder)
  kPartiallyVisible,  // PVC: control logic steering visible components
  kHidden,            // HC: pipeline/forwarding/ILP machinery
};

const char* class_name(ComponentClass cls);      // "D-VC", "A-VC", ...
const char* class_description(ComponentClass cls);

/// The components of the Plasma-class processor model (paper §4 Table 1
/// rows, with mul and div split since they are distinct netlists).
enum class CutId {
  kMultiplier,
  kDivider,
  kRegisterFile,
  kMemCtrl,
  kShifter,
  kAlu,
  kControl,
  kForwarding,  // "pipeline" HC row (forwarding unit)
  kPipeline,    // pipeline registers HC
  kBranchAdder, // PC-relative target adder — the paper's M-VC example
};

/// TPG strategy selection (paper §3.3).
enum class TpgStrategy {
  kAtpgDeterministic,     // low-level, constrained ATPG ("AtpgD")
  kPseudorandom,          // low-level, software-LFSR loop ("PR")
  kRegularDeterministic,  // high-level, regular test sets ("RegD")
  kFunctionalTest,        // PVC opcode sweep ("FT")
  kNone,                  // tested only as a side effect (HCs)
};

const char* strategy_name(TpgStrategy s);

struct ComponentInfo {
  CutId id;
  std::string name;
  ComponentClass cls;
  TpgStrategy default_strategy;
  int test_priority;        // 1 = first (paper: D-VCs first)
  bool periodic_suitable;   // suitable for on-line periodic testing
  std::string excite;       // instructions that excite the component
  std::string control;      // controllability: how inputs get values
  std::string observe;      // observability: how outputs reach memory
  netlist::Netlist netlist; // gate-level structural model

  double gate_equivalents() const { return netlist.gate_equivalents(); }
};

/// The full Plasma-class processor: every component with its gate-level
/// model and classification metadata. Building the netlists is moderately
/// expensive (the multiplier array alone is ~20k gates), so share instances.
class ProcessorModel {
 public:
  ProcessorModel();

  const std::vector<ComponentInfo>& components() const { return components_; }
  const ComponentInfo& component(CutId id) const;

  /// Total gate-equivalents over all components.
  double total_gate_equivalents() const;
  /// Area share of a classification (paper: D-VCs dominate at 92%).
  double class_area_fraction(ComponentClass cls) const;

  /// Components ordered by test priority (the paper's development order).
  std::vector<const ComponentInfo*> by_priority() const;

 private:
  std::vector<ComponentInfo> components_;
};

}  // namespace sbst::core
