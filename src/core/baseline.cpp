#include "core/baseline.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace sbst::core {

namespace {

// Registers the generator may freely clobber. Excluded: $zero, the MISR
// harness ($s2=18, $s7=23, $t8=24, $t9=25), $ra (jal), the sandbox base
// ($sp=29) and $k0/$k1/$gp (26-28).
constexpr int kPool[] = {1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11,
                         12, 13, 14, 15, 16, 17, 19, 20, 21, 22, 30};
constexpr std::size_t kPoolSize = sizeof(kPool) / sizeof(kPool[0]);

std::string reg(Rng& rng) {
  return "$" + std::to_string(kPool[rng.below(kPoolSize)]);
}

std::string hex(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

}  // namespace

Routine make_random_instruction_routine(const RandomProgramOptions& options,
                                        const CodegenOptions& codegen) {
  Rng rng(options.seed);
  std::string as;
  auto line = [&](const std::string& s) { as += "  " + s + "\n"; };

  line("li   $s7, " + hex(codegen.misr_poly));
  line("li   $s2, " + hex(codegen.misr_seed));
  line("li   $sp, " + hex(options.data_base));
  // Seed the sandbox registers with random values.
  for (int r : kPool) {
    line("li   $" + std::to_string(r) + ", " + hex(rng.next32()));
  }

  const std::uint32_t words = options.data_bytes / 4;
  unsigned label_counter = 0;
  std::size_t emitted = 0;

  // One random, architecturally safe instruction.
  auto random_arith = [&]() {
    static const char* kOps[] = {"addu", "subu", "and", "or",
                                 "xor",  "nor",  "slt", "sltu"};
    line(std::string(kOps[rng.below(8)]) + " " + reg(rng) + ", " + reg(rng) +
         ", " + reg(rng));
    ++emitted;
  };

  while (emitted < options.instruction_count) {
    const double dice = static_cast<double>(rng.next32()) / 4294967296.0;
    double edge = options.shift_fraction;
    if (dice < edge) {
      if (rng.chance(0.5)) {
        static const char* kShifts[] = {"sll", "srl", "sra"};
        line(std::string(kShifts[rng.below(3)]) + " " + reg(rng) + ", " +
             reg(rng) + ", " + std::to_string(rng.below(32)));
      } else {
        static const char* kShiftVs[] = {"sllv", "srlv", "srav"};
        line(std::string(kShiftVs[rng.below(3)]) + " " + reg(rng) + ", " +
             reg(rng) + ", " + reg(rng));
      }
      ++emitted;
      continue;
    }
    edge += options.muldiv_fraction;
    if (dice < edge) {
      static const char* kMd[] = {"mult", "multu", "div", "divu"};
      line(std::string(kMd[rng.below(4)]) + " " + reg(rng) + ", " + reg(rng));
      line((rng.chance(0.5) ? "mflo " : "mfhi ") + reg(rng));
      emitted += 2;
      continue;
    }
    edge += options.memory_fraction;
    if (dice < edge) {
      const unsigned kind = static_cast<unsigned>(rng.below(4));
      if (kind == 0) {
        const std::uint32_t off = 4 * static_cast<std::uint32_t>(
                                          rng.below(words));
        line((rng.chance(0.5) ? "sw   " : "lw   ") + reg(rng) + ", " +
             std::to_string(off) + "($sp)");
      } else if (kind == 1) {
        const std::uint32_t off = static_cast<std::uint32_t>(
            rng.below(options.data_bytes));
        static const char* kByte[] = {"sb", "lb", "lbu"};
        line(std::string(kByte[rng.below(3)]) + "   " + reg(rng) + ", " +
             std::to_string(off) + "($sp)");
      } else {
        const std::uint32_t off = 2 * static_cast<std::uint32_t>(
                                          rng.below(options.data_bytes / 2));
        static const char* kHalf[] = {"sh", "lh", "lhu"};
        line(std::string(kHalf[rng.below(3)]) + "   " + reg(rng) + ", " +
             std::to_string(off) + "($sp)");
      }
      ++emitted;
      continue;
    }
    edge += options.branch_fraction;
    if (dice < edge) {
      // Forward branch over 1..3 instructions; delay slot always filled.
      const std::string label = "rnd_" + std::to_string(label_counter++);
      line((rng.chance(0.5) ? "beq  " : "bne  ") + reg(rng) + ", " +
           reg(rng) + ", " + label);
      ++emitted;
      random_arith();  // delay slot
      const std::size_t skip = 1 + rng.below(3);
      for (std::size_t i = 0; i < skip; ++i) random_arith();
      as += label + ":\n";
      continue;
    }
    edge += options.immediate_fraction;
    if (dice < edge) {
      const unsigned kind = static_cast<unsigned>(rng.below(7));
      static const char* kImm[] = {"addiu", "slti", "sltiu", "andi",
                                   "ori",   "xori", "lui"};
      const char* op = kImm[kind];
      if (kind <= 2) {  // signed immediates
        line(std::string(op) + " " + reg(rng) + ", " + reg(rng) + ", " +
             std::to_string(static_cast<std::int32_t>(rng.next32() % 0x8000) -
                            0x4000));
      } else if (kind == 6) {
        line(std::string(op) + "  " + reg(rng) + ", " +
             hex(rng.next32() & 0xffff));
      } else {
        line(std::string(op) + " " + reg(rng) + ", " + reg(rng) + ", " +
             hex(rng.next32() & 0xffff));
      }
      ++emitted;
      continue;
    }
    random_arith();
  }

  // Observe: dump every sandbox register through the MISR.
  for (int r : kPool) {
    line("jal  misr");
    line("addu $t8, $" + std::to_string(r) + ", $zero");
  }
  line("la   $s6, signatures");
  line("sw   $s2, 28($s6)");

  return {.name = "rnd",
          .target = CutId::kControl,  // functional: no single target
          .strategy = TpgStrategy::kPseudorandom,
          .style = "functional random (baseline)",
          .assembly = std::move(as),
          .sig_slot = 7,
          .pattern_count = emitted};
}

}  // namespace sbst::core
