#include "core/march.hpp"

#include <cstdio>

namespace sbst::core {

std::size_t MarchAlgorithm::ops_per_cell() const {
  std::size_t n = 0;
  for (const MarchElement& e : elements) n += e.ops.size();
  return n;
}

const MarchAlgorithm& mats_plus() {
  static const MarchAlgorithm kAlg{
      "MATS+",
      {{MarchOrder::kEither, {MarchOp::kW0}},
       {MarchOrder::kUp, {MarchOp::kR0, MarchOp::kW1}},
       {MarchOrder::kDown, {MarchOp::kR1, MarchOp::kW0}}}};
  return kAlg;
}

const MarchAlgorithm& march_x() {
  static const MarchAlgorithm kAlg{
      "March X",
      {{MarchOrder::kEither, {MarchOp::kW0}},
       {MarchOrder::kUp, {MarchOp::kR0, MarchOp::kW1}},
       {MarchOrder::kDown, {MarchOp::kR1, MarchOp::kW0}},
       {MarchOrder::kEither, {MarchOp::kR0}}}};
  return kAlg;
}

const MarchAlgorithm& march_c_minus() {
  static const MarchAlgorithm kAlg{
      "March C-",
      {{MarchOrder::kEither, {MarchOp::kW0}},
       {MarchOrder::kUp, {MarchOp::kR0, MarchOp::kW1}},
       {MarchOrder::kUp, {MarchOp::kR1, MarchOp::kW0}},
       {MarchOrder::kDown, {MarchOp::kR0, MarchOp::kW1}},
       {MarchOrder::kDown, {MarchOp::kR1, MarchOp::kW0}},
       {MarchOrder::kEither, {MarchOp::kR0}}}};
  return kAlg;
}

namespace {

template <typename CellFn>
void walk(const MarchAlgorithm& algorithm, unsigned first, unsigned last,
          CellFn&& per_cell) {
  for (const MarchElement& e : algorithm.elements) {
    if (e.order == MarchOrder::kDown) {
      for (unsigned r = last + 1; r-- > first;) per_cell(r, e.ops);
    } else {
      for (unsigned r = first; r <= last; ++r) per_cell(r, e.ops);
    }
  }
}

}  // namespace

fault::SeqStimulus march_regfile_stimulus(
    const netlist::Netlist& regfile, const MarchAlgorithm& algorithm,
    unsigned first, unsigned last,
    const std::vector<std::uint32_t>& backgrounds) {
  fault::SeqStimulus seq(regfile);
  for (std::uint32_t bg : backgrounds) {
    const std::uint32_t v0 = bg;
    const std::uint32_t v1 = ~bg;
    walk(algorithm, first, last,
         [&](unsigned r, const std::vector<MarchOp>& ops) {
           for (MarchOp op : ops) {
             switch (op) {
               case MarchOp::kW0:
                 seq.add_cycle({{"waddr", r}, {"wdata", v0}, {"wen", 1}},
                               false);
                 break;
               case MarchOp::kW1:
                 seq.add_cycle({{"waddr", r}, {"wdata", v1}, {"wen", 1}},
                               false);
                 break;
               case MarchOp::kR0:
               case MarchOp::kR1:
                 seq.add_cycle({{"wen", 0},
                                {"raddr1", r},
                                {"raddr2", (r == first) ? last : r - 1}},
                               true);
                 break;
             }
           }
         });
  }
  return seq;
}

Routine make_march_regfile_routine(const MarchAlgorithm& algorithm,
                                   const CodegenOptions& opts,
                                   std::uint32_t background) {
  std::string as;
  auto line = [&](const std::string& s) { as += "  " + s + "\n"; };
  auto hex = [](std::uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%x", v);
    return std::string(buf);
  };
  line("# register-file " + algorithm.name + " (" +
       std::to_string(algorithm.ops_per_cell()) + "n), two-phase");
  line("li   $s7, " + hex(opts.misr_poly));
  line("li   $s2, " + hex(opts.misr_seed));

  const std::uint32_t v0 = background;
  const std::uint32_t v1 = ~background;

  // Phase 1: sweep $1..$15, MISR in high registers through `misr`.
  // March reads pair the swept register with its march-order predecessor on
  // the second read port, so both read-mux trees are exercised with
  // distinguishable data (reading via one port only leaves half the read
  // logic dark — measured in bench/march_regfile).
  auto emit_half = [&](unsigned first, unsigned last, bool high_harness) {
    walk(algorithm, first, last,
         [&](unsigned r, const std::vector<MarchOp>& ops) {
           const std::string reg = "$" + std::to_string(r);
           const unsigned prev = (r == first) ? last : r - 1;
           const std::string other = "$" + std::to_string(prev);
           for (MarchOp op : ops) {
             switch (op) {
               case MarchOp::kW0:
                 line("li   " + reg + ", " + hex(v0));
                 break;
               case MarchOp::kW1:
                 line("li   " + reg + ", " + hex(v1));
                 break;
               case MarchOp::kR0:
               case MarchOp::kR1:
                 if (high_harness) {
                   line("jal  misr");
                   line("addu $t8, " + reg + ", " + other);
                 } else {
                   line("jal  misr_lo");
                   line("addu $8, " + reg + ", " + other);
                 }
                 break;
             }
           }
         });
  };
  emit_half(1, 15, /*high_harness=*/true);
  line("addu $2, $s2, $zero");
  line("addu $7, $s7, $zero");
  // $31 is the jal link register: sweep 16..30 here; $31 keeps its
  // checkerboard coverage from the RegD routine.
  emit_half(16, 30, /*high_harness=*/false);
  line("la   $5, signatures");
  line("sw   $2, 28($5)");

  return {.name = "march",
          .target = CutId::kRegisterFile,
          .strategy = TpgStrategy::kRegularDeterministic,
          .style = algorithm.name + " (I)",
          .assembly = std::move(as),
          .sig_slot = 7,
          .pattern_count = algorithm.ops_per_cell() * 30};
}

}  // namespace sbst::core
