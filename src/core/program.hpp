// Test-program assembly: combines self-test routines, the shared MISR
// subroutines and the signature area into one SBST program image (and into
// standalone per-routine programs for per-routine statistics).
//
// Program layout:
//   start:   <routine 1> ... <routine k>   (each ends unloading a signature)
//            break
//   misr:    shared 8-word MISR            (paper §4)
//   misr_lo: low-register mirror
//   signatures: .word 0 x 8                (one per CUT, paper: "7
//                                           signatures ... unloaded to data
//                                           memory for fault detection")
//   <per-routine .word data>
#pragma once

#include <vector>

#include "core/codegen.hpp"
#include "isa/assembler.hpp"

namespace sbst::core {

inline constexpr unsigned kSignatureSlots = 8;

struct TestProgram {
  isa::Program image;
  std::vector<Routine> routines;
  std::uint32_t entry = 0;
  std::uint32_t signature_base = 0;  // byte address of the signature array

  /// Word offsets of each routine inside the image, by routine index.
  struct Section {
    std::uint32_t begin_addr;
    std::uint32_t end_addr;
    std::size_t size_words() const { return (end_addr - begin_addr) / 4; }
  };
  std::vector<Section> sections;

  std::uint32_t signature_address(unsigned slot) const {
    return signature_base + slot * 4;
  }
};

class TestProgramBuilder {
 public:
  explicit TestProgramBuilder(CodegenOptions opts = {}) : opts_(opts) {}

  TestProgramBuilder& add(Routine routine);

  /// All seven Table-1 routines in the paper's priority order.
  TestProgramBuilder& add_default_routines(const ProcessorModel& model);

  /// Assembles the combined program at `base`.
  TestProgram build(std::uint32_t base = 0) const;

  /// Assembles one routine as a standalone program (routine + MISR + break),
  /// used for the per-routine rows of Table 1.
  TestProgram build_standalone(const Routine& routine,
                               std::uint32_t base = 0) const;

  const CodegenOptions& options() const { return opts_; }

 private:
  CodegenOptions opts_;
  std::vector<Routine> routines_;
};

}  // namespace sbst::core
