#include "core/diagnose.hpp"

#include <algorithm>
#include <stdexcept>

namespace sbst::core {

Diagnosis diagnose(const TestProgram& program,
                   const std::vector<std::uint32_t>& good_signatures,
                   const std::vector<std::uint32_t>& observed_signatures) {
  if (good_signatures.size() != observed_signatures.size()) {
    throw std::invalid_argument("diagnose: signature vector size mismatch");
  }
  Diagnosis out;
  for (unsigned slot = 0; slot < good_signatures.size(); ++slot) {
    if (good_signatures[slot] != observed_signatures[slot]) {
      out.failing_slots.push_back(slot);
    }
  }
  if (out.failing_slots.empty()) return out;

  auto add_suspect = [&](CutId id) {
    if (std::find(out.suspects.begin(), out.suspects.end(), id) ==
        out.suspects.end()) {
      out.suspects.push_back(id);
    }
  };

  // Map failing slots back to the routines that own them.
  std::vector<const Routine*> failing_routines;
  for (unsigned slot : out.failing_slots) {
    for (const Routine& r : program.routines) {
      if (r.sig_slot == slot) failing_routines.push_back(&r);
    }
  }

  if (failing_routines.size() == 1) {
    add_suspect(failing_routines.front()->target);
    return out;
  }

  // Multiple routines failed: a component every routine leans on is the
  // prime suspect. Every routine's li/address arithmetic runs through the
  // ALU, every operand through the register file, every fetch through the
  // control decoder.
  if (failing_routines.size() >= program.routines.size() / 2 + 1) {
    add_suspect(CutId::kAlu);
    add_suspect(CutId::kRegisterFile);
    add_suspect(CutId::kControl);
  }
  for (const Routine* r : failing_routines) add_suspect(r->target);
  return out;
}

std::vector<InjectionDiagnosis> diagnose_campaign(
    GradingSession& session, const TestProgram& program, CutId target,
    const std::vector<fault::Fault>& faults, const sim::CpuConfig& config,
    const InjectOptions& inject) {
  std::vector<InjectionOutcome> outcomes =
      run_injection_campaign(session, program, target, faults, config, inject);
  std::vector<InjectionDiagnosis> out;
  out.reserve(outcomes.size());
  for (InjectionOutcome& o : outcomes) {
    Diagnosis d;
    if (o.outcome != RunOutcome::kInfraError) {
      d = diagnose(program, o.good_signatures, o.faulty_signatures);
    }
    out.push_back({std::move(o), std::move(d)});
  }
  return out;
}

}  // namespace sbst::core
