#include "core/evaluate.hpp"

#include <stdexcept>

#include "fault/sim.hpp"

namespace sbst::core {

TraceCollector::TraceCollector(const ProcessorModel& model)
    : alu_(model.component(CutId::kAlu).netlist),
      shifter_(model.component(CutId::kShifter).netlist),
      mul_(model.component(CutId::kMultiplier).netlist),
      control_(model.component(CutId::kControl).netlist),
      fwd_(model.component(CutId::kForwarding).netlist),
      badd_(model.component(CutId::kBranchAdder).netlist),
      div_(model.component(CutId::kDivider).netlist),
      rf_(model.component(CutId::kRegisterFile).netlist),
      mem_(model.component(CutId::kMemCtrl).netlist),
      pipe_(model.component(CutId::kPipeline).netlist) {}

void TraceCollector::on_alu(rtlgen::AluOp op, std::uint32_t a,
                            std::uint32_t b) {
  if (!fresh(alu_seen_, {static_cast<std::uint8_t>(op), a, b})) return;
  alu_.add({{"a", a}, {"b", b}, {"op", static_cast<std::uint64_t>(op)}});
}

void TraceCollector::on_shift(rtlgen::ShiftOp op, std::uint32_t value,
                              std::uint32_t shamt) {
  if (!fresh(shift_seen_, {static_cast<std::uint8_t>(op), value, shamt})) {
    return;
  }
  shifter_.add(
      {{"a", value}, {"shamt", shamt}, {"op", static_cast<std::uint64_t>(op)}});
}

void TraceCollector::on_mult(std::uint32_t a, std::uint32_t b) {
  if (!fresh(mul_seen_, {a, b})) return;
  mul_.add({{"a", a}, {"b", b}});
}

void TraceCollector::on_div(std::uint32_t dividend, std::uint32_t divisor) {
  // Mirror the serial divider protocol: load, width steps, then idle cycles
  // while the routine's mflo/mfhi/jal sequence reads the results — the
  // divider holds its state through them, exercising the recirculation
  // muxes under observation.
  div_.add_cycle({{"start", 1}, {"dividend", dividend}, {"divisor", divisor}},
                 false);
  for (unsigned i = 0; i < 32; ++i) div_.add_cycle({{"start", 0}}, false);
  div_.add_cycle({{"start", 0}}, true);
  div_.add_cycle({{"start", 0}}, true);
  div_.add_cycle({{"start", 0}}, true);
}

void TraceCollector::on_regfile(std::uint8_t waddr, std::uint32_t wdata,
                                bool wen, std::uint8_t raddr1,
                                std::uint8_t raddr2) {
  if (pc_ < rf_begin_ || pc_ >= rf_end_ || rf_.size() >= rf_cap_) {
    // Still collect the pipeline-register side-effect stream (cheap).
    if (pipe_.size() < pipe_cap_ && wen) {
      pipe_.add_cycle({{"d", wdata}, {"en", 1}, {"flush", 0}}, true);
    }
    return;
  }
  rf_.add_cycle({{"waddr", waddr},
                 {"wdata", wdata},
                 {"wen", wen ? 1 : 0},
                 {"raddr1", raddr1},
                 {"raddr2", raddr2}},
                raddr1 != 0 || raddr2 != 0);
  if (pipe_.size() < pipe_cap_ && wen) {
    pipe_.add_cycle({{"d", wdata}, {"en", 1}, {"flush", 0}}, true);
  }
}

void TraceCollector::on_mem(std::uint32_t addr, std::uint32_t wdata,
                            rtlgen::MemSize size, bool sign, bool wr,
                            std::uint32_t mem_rdata) {
  mem_.add_cycle({{"addr", addr},
                  {"wdata", wdata},
                  {"size", static_cast<std::uint64_t>(size)},
                  {"sign", sign ? 1 : 0},
                  {"wr", wr ? 1 : 0},
                  {"en", 1}},
                 false);
  mem_.add_cycle({{"mem_rdata", mem_rdata},
                  {"size", static_cast<std::uint64_t>(size)},
                  {"sign", sign ? 1 : 0},
                  {"en", 0}},
                 true);
}

void TraceCollector::on_branch_target(std::uint32_t pc_plus4,
                                      std::uint32_t offset) {
  if (!fresh(badd_seen_, {pc_plus4, offset})) return;
  badd_.add({{"pc", pc_plus4}, {"offset", offset}});
}

void TraceCollector::on_branch_flush() {
  if (pipe_.size() < pipe_cap_) {
    pipe_.add_cycle({{"d", 0xdeadbeefu}, {"en", 1}, {"flush", 1}}, true);
  }
}

void TraceCollector::on_control(std::uint8_t opcode, std::uint8_t funct) {
  // The decoder physically sees the funct field for every instruction (for
  // I-types it aliases the low immediate bits); it must ignore it unless
  // the opcode is R-type — and a fault breaking that is observable.
  if (!fresh(control_seen_, {opcode, funct})) return;
  control_.add({{"opcode", opcode}, {"funct", funct}});
}

void TraceCollector::on_forward(std::uint8_t rs, std::uint8_t rt,
                                std::uint8_t ex_rd, bool ex_wen,
                                std::uint8_t mem_rd, bool mem_wen) {
  if (!fresh(fwd_seen_, {rs, rt, ex_rd, ex_wen, mem_rd, mem_wen})) return;
  fwd_.add({{"rs", rs},
            {"rt", rt},
            {"ex_rd", ex_rd},
            {"ex_wen", ex_wen ? 1 : 0},
            {"mem_rd", mem_rd},
            {"mem_wen", mem_wen ? 1 : 0}});
}

fault::ObserveSet observation_points(const ComponentInfo& info,
                                     const EvalOptions& options) {
  const netlist::Netlist& nl = info.netlist;
  if (!options.architectural_observability) return nl.output_nets();
  fault::ObserveSet obs;
  auto add_port = [&](const char* name) {
    const netlist::Bus& bus = nl.output_port(name);
    obs.insert(obs.end(), bus.begin(), bus.end());
  };
  switch (info.id) {
    case CutId::kAlu:
      // cout/ovf are not MIPS-visible flags; result and the branch zero
      // condition are.
      add_port("result");
      add_port("zero");
      break;
    case CutId::kDivider:
      add_port("quotient");
      add_port("remainder");
      break;
    case CutId::kMemCtrl:
      add_port("rdata");      // load data -> register -> MISR
      add_port("mem_wdata");  // store data reaches memory, later reloaded
      add_port("byte_en");
      if (options.observe_address_outputs) add_port("mem_addr");  // A-VC
      break;
    default:
      return nl.output_nets();
  }
  return obs;
}

const CutCoverage& ProgramEvaluation::cut(CutId id) const {
  for (const CutCoverage& c : cuts) {
    if (c.id == id) return c;
  }
  throw std::out_of_range("ProgramEvaluation: unknown cut");
}

double ProgramEvaluation::overall_fc() const {
  std::size_t total = 0, detected = 0;
  for (const CutCoverage& c : cuts) {
    total += c.coverage.total;
    detected += c.coverage.detected;
  }
  return total == 0 ? 100.0
                    : 100.0 * static_cast<double>(detected) /
                          static_cast<double>(total);
}

double ProgramEvaluation::missing_fc(CutId id) const {
  std::size_t total = 0;
  for (const CutCoverage& c : cuts) total += c.coverage.total;
  const CutCoverage& c = cut(id);
  return total == 0 ? 0.0
                    : 100.0 *
                          static_cast<double>(c.coverage.total -
                                              c.coverage.detected) /
                          static_cast<double>(total);
}

ProgramEvaluation evaluate_program(const ProcessorModel& model,
                                   const TestProgramBuilder& builder,
                                   const TestProgram& program,
                                   const EvalOptions& options) {
  ProgramEvaluation out;

  // ---- combined run with tracing ------------------------------------------
  TraceCollector trace(model);
  for (std::size_t i = 0; i < program.routines.size(); ++i) {
    if (program.routines[i].target == CutId::kRegisterFile) {
      trace.restrict_regfile(program.sections[i].begin_addr,
                             program.sections[i].end_addr);
    }
  }
  sim::Cpu cpu(options.cpu);
  cpu.reset();
  cpu.load(program.image);
  cpu.set_hooks(&trace);
  out.total = cpu.run(program.entry, options.max_instructions);
  if (!out.total.halted) {
    throw std::runtime_error("evaluate_program: program did not halt");
  }
  for (unsigned slot = 0; slot < kSignatureSlots; ++slot) {
    out.signatures.push_back(cpu.read_word(program.signature_address(slot)));
  }

  // ---- per-component fault grading ----------------------------------------
  for (const ComponentInfo& info : model.components()) {
    fault::FaultUniverse universe(info.netlist);
    const fault::ObserveSet obs = observation_points(info, options);
    CutCoverage cc;
    cc.id = info.id;
    cc.collapsed_faults = universe.size();
    cc.uncollapsed_faults = universe.uncollapsed_count();
    switch (info.id) {
      case CutId::kAlu:
        cc.stimulus_size = trace.alu_patterns().size();
        cc.coverage = fault::simulate_comb_parallel(info.netlist, universe.collapsed(),
                                           trace.alu_patterns(), obs, options.sim);
        break;
      case CutId::kShifter:
        cc.stimulus_size = trace.shifter_patterns().size();
        cc.coverage = fault::simulate_comb_parallel(info.netlist, universe.collapsed(),
                                           trace.shifter_patterns(), obs, options.sim);
        break;
      case CutId::kMultiplier:
        cc.stimulus_size = trace.multiplier_patterns().size();
        cc.coverage = fault::simulate_comb_parallel(info.netlist, universe.collapsed(),
                                           trace.multiplier_patterns(), obs, options.sim);
        break;
      case CutId::kControl:
        cc.stimulus_size = trace.control_patterns().size();
        cc.coverage = fault::simulate_comb_parallel(info.netlist, universe.collapsed(),
                                           trace.control_patterns(), obs, options.sim);
        break;
      case CutId::kForwarding:
        cc.stimulus_size = trace.forwarding_patterns().size();
        cc.coverage = fault::simulate_comb_parallel(info.netlist, universe.collapsed(),
                                           trace.forwarding_patterns(), obs, options.sim);
        break;
      case CutId::kBranchAdder:
        cc.stimulus_size = trace.branch_adder_patterns().size();
        cc.coverage =
            fault::simulate_comb_parallel(info.netlist, universe.collapsed(),
                                 trace.branch_adder_patterns(), obs, options.sim);
        break;
      case CutId::kDivider:
        cc.stimulus_size = trace.divider_stimulus().size();
        cc.coverage = fault::simulate_seq_parallel(info.netlist, universe.collapsed(),
                                          trace.divider_stimulus(), obs, options.sim);
        break;
      case CutId::kRegisterFile:
        cc.stimulus_size = trace.regfile_stimulus().size();
        cc.coverage = fault::simulate_seq_parallel(info.netlist, universe.collapsed(),
                                          trace.regfile_stimulus(), obs, options.sim);
        break;
      case CutId::kMemCtrl:
        cc.stimulus_size = trace.memctrl_stimulus().size();
        cc.coverage = fault::simulate_seq_parallel(info.netlist, universe.collapsed(),
                                          trace.memctrl_stimulus(), obs, options.sim);
        break;
      case CutId::kPipeline:
        cc.stimulus_size = trace.pipeline_stimulus().size();
        cc.coverage = fault::simulate_seq_parallel(info.netlist, universe.collapsed(),
                                          trace.pipeline_stimulus(), obs, options.sim);
        break;
    }
    out.cuts.push_back(std::move(cc));
  }

  // ---- standalone per-routine statistics ----------------------------------
  for (std::size_t i = 0; i < program.routines.size(); ++i) {
    const Routine& r = program.routines[i];
    const TestProgram standalone = builder.build_standalone(r);
    sim::Cpu solo(options.cpu);
    solo.reset();
    solo.load(standalone.image);
    RoutineStats rs;
    rs.name = r.name;
    rs.style = r.style;
    rs.size_words = program.sections[i].size_words();
    rs.exec = solo.run(standalone.entry, options.max_instructions);
    out.routines.push_back(std::move(rs));
  }
  return out;
}

}  // namespace sbst::core
