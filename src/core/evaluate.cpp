#include "core/evaluate.hpp"

#include <chrono>
#include <stdexcept>

#include "fault/sim.hpp"
#include "sim/exec.hpp"

namespace sbst::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t pack32(std::uint32_t hi, std::uint32_t lo) {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

}  // namespace

TraceCollector::TraceCollector(const ProcessorModel& model)
    : alu_(model.component(CutId::kAlu).netlist),
      shifter_(model.component(CutId::kShifter).netlist),
      mul_(model.component(CutId::kMultiplier).netlist),
      control_(model.component(CutId::kControl).netlist),
      fwd_(model.component(CutId::kForwarding).netlist),
      badd_(model.component(CutId::kBranchAdder).netlist),
      div_(model.component(CutId::kDivider).netlist),
      rf_(model.component(CutId::kRegisterFile).netlist),
      mem_(model.component(CutId::kMemCtrl).netlist),
      pipe_(model.component(CutId::kPipeline).netlist) {}

void TraceCollector::on_alu(rtlgen::AluOp op, std::uint32_t a,
                            std::uint32_t b) {
  if (!fresh(alu_seen_, {pack32(a, b), static_cast<std::uint64_t>(op)})) {
    return;
  }
  alu_.add({{"a", a}, {"b", b}, {"op", static_cast<std::uint64_t>(op)}});
}

void TraceCollector::on_shift(rtlgen::ShiftOp op, std::uint32_t value,
                              std::uint32_t shamt) {
  if (!fresh(shift_seen_,
             {pack32(value, shamt), static_cast<std::uint64_t>(op)})) {
    return;
  }
  shifter_.add(
      {{"a", value}, {"shamt", shamt}, {"op", static_cast<std::uint64_t>(op)}});
}

void TraceCollector::on_mult(std::uint32_t a, std::uint32_t b) {
  if (!fresh(mul_seen_, {pack32(a, b), 0})) return;
  mul_.add({{"a", a}, {"b", b}});
}

void TraceCollector::on_div(std::uint32_t dividend, std::uint32_t divisor) {
  // Mirror the serial divider protocol: load, width steps, then idle cycles
  // while the routine's mflo/mfhi/jal sequence reads the results — the
  // divider holds its state through them, exercising the recirculation
  // muxes under observation.
  div_.add_cycle({{"start", 1}, {"dividend", dividend}, {"divisor", divisor}},
                 false);
  for (unsigned i = 0; i < 32; ++i) div_.add_cycle({{"start", 0}}, false);
  div_.add_cycle({{"start", 0}}, true);
  div_.add_cycle({{"start", 0}}, true);
  div_.add_cycle({{"start", 0}}, true);
}

void TraceCollector::on_regfile(std::uint8_t waddr, std::uint32_t wdata,
                                bool wen, std::uint8_t raddr1,
                                std::uint8_t raddr2) {
  if (pc_ < rf_begin_ || pc_ >= rf_end_ || rf_.size() >= rf_cap_) {
    // Still collect the pipeline-register side-effect stream (cheap).
    if (pipe_.size() < pipe_cap_ && wen) {
      pipe_.add_cycle({{"d", wdata}, {"en", 1}, {"flush", 0}}, true);
    }
    return;
  }
  rf_.add_cycle({{"waddr", waddr},
                 {"wdata", wdata},
                 {"wen", wen ? 1 : 0},
                 {"raddr1", raddr1},
                 {"raddr2", raddr2}},
                raddr1 != 0 || raddr2 != 0);
  if (pipe_.size() < pipe_cap_ && wen) {
    pipe_.add_cycle({{"d", wdata}, {"en", 1}, {"flush", 0}}, true);
  }
}

void TraceCollector::on_mem(std::uint32_t addr, std::uint32_t wdata,
                            rtlgen::MemSize size, bool sign, bool wr,
                            std::uint32_t mem_rdata) {
  mem_.add_cycle({{"addr", addr},
                  {"wdata", wdata},
                  {"size", static_cast<std::uint64_t>(size)},
                  {"sign", sign ? 1 : 0},
                  {"wr", wr ? 1 : 0},
                  {"en", 1}},
                 false);
  mem_.add_cycle({{"mem_rdata", mem_rdata},
                  {"size", static_cast<std::uint64_t>(size)},
                  {"sign", sign ? 1 : 0},
                  {"en", 0}},
                 true);
}

void TraceCollector::on_branch_target(std::uint32_t pc_plus4,
                                      std::uint32_t offset) {
  if (!fresh(badd_seen_, {pack32(pc_plus4, offset), 0})) return;
  badd_.add({{"pc", pc_plus4}, {"offset", offset}});
}

void TraceCollector::on_branch_flush() {
  if (pipe_.size() < pipe_cap_) {
    pipe_.add_cycle({{"d", 0xdeadbeefu}, {"en", 1}, {"flush", 1}}, true);
  }
}

void TraceCollector::on_control(std::uint8_t opcode, std::uint8_t funct) {
  // The decoder physically sees the funct field for every instruction (for
  // I-types it aliases the low immediate bits); it must ignore it unless
  // the opcode is R-type — and a fault breaking that is observable.
  if (!fresh(control_seen_,
             {(static_cast<std::uint64_t>(opcode) << 8) | funct, 0})) {
    return;
  }
  control_.add({{"opcode", opcode}, {"funct", funct}});
}

void TraceCollector::on_forward(std::uint8_t rs, std::uint8_t rt,
                                std::uint8_t ex_rd, bool ex_wen,
                                std::uint8_t mem_rd, bool mem_wen) {
  const std::uint64_t key = static_cast<std::uint64_t>(rs) |
                            (static_cast<std::uint64_t>(rt) << 8) |
                            (static_cast<std::uint64_t>(ex_rd) << 16) |
                            (static_cast<std::uint64_t>(mem_rd) << 24) |
                            (static_cast<std::uint64_t>(ex_wen) << 32) |
                            (static_cast<std::uint64_t>(mem_wen) << 33);
  if (!fresh(fwd_seen_, {key, 0})) return;
  fwd_.add({{"rs", rs},
            {"rt", rt},
            {"ex_rd", ex_rd},
            {"ex_wen", ex_wen ? 1 : 0},
            {"mem_rd", mem_rd},
            {"mem_wen", mem_wen ? 1 : 0}});
}

ObserveMode observe_mode(const EvalOptions& options) {
  if (!options.architectural_observability) return ObserveMode::kFullNetlist;
  return options.observe_address_outputs
             ? ObserveMode::kArchitecturalPlusAddress
             : ObserveMode::kArchitectural;
}

fault::ObserveSet observation_points(const ComponentInfo& info,
                                     const EvalOptions& options) {
  return observation_points(info, observe_mode(options));
}

const CutCoverage& ProgramEvaluation::cut(CutId id) const {
  for (const CutCoverage& c : cuts) {
    if (c.id == id) return c;
  }
  throw std::out_of_range("ProgramEvaluation: unknown cut");
}

const CutCoverage& ProgramEvaluation::cut(CutId id,
                                          fault::FaultModel model) const {
  for (const CutCoverage& c : cuts) {
    if (c.id == id && c.model == model) return c;
  }
  throw std::out_of_range("ProgramEvaluation: cut not graded under model");
}

double ProgramEvaluation::overall_fc() const {
  std::size_t total = 0, detected = 0;
  for (const CutCoverage& c : cuts) {
    total += c.coverage.total;
    detected += c.coverage.detected;
  }
  return total == 0 ? 100.0
                    : 100.0 * static_cast<double>(detected) /
                          static_cast<double>(total);
}

OutcomeHistogram ProgramEvaluation::outcome_totals() const {
  OutcomeHistogram h;
  for (const CutCoverage& c : cuts) {
    for (std::size_t k = 0; k < kRunOutcomeCount; ++k) {
      h.counts[k] += c.outcomes.counts[k];
    }
  }
  return h;
}

double ProgramEvaluation::missing_fc(CutId id) const {
  std::size_t total = 0;
  for (const CutCoverage& c : cuts) total += c.coverage.total;
  const CutCoverage& c = cut(id);
  return total == 0 ? 0.0
                    : 100.0 *
                          static_cast<double>(c.coverage.total -
                                              c.coverage.detected) /
                          static_cast<double>(total);
}

ProgramEvaluation evaluate_program(GradingSession& session,
                                   const TestProgramBuilder& builder,
                                   const TestProgram& program,
                                   const EvalOptions& options) {
  const ProcessorModel& model = session.model();
  ProgramEvaluation out;

  // ---- combined run with tracing ------------------------------------------
  auto t_trace = Clock::now();
  TraceCollector trace(model);
  trace.set_regfile_cycle_cap(options.regfile_cycle_cap);
  trace.set_pipeline_cycle_cap(options.pipeline_cycle_cap);
  for (std::size_t i = 0; i < program.routines.size(); ++i) {
    if (program.routines[i].target == CutId::kRegisterFile) {
      trace.restrict_regfile(program.sections[i].begin_addr,
                             program.sections[i].end_addr);
    }
  }
  sim::Cpu cpu(options.cpu);
  cpu.reset();
  cpu.load(program.image, session.decoded(program.image));
  sim::TraceSink<TraceCollector> sink{&trace};  // devirtualized event sink
  out.total = cpu.run_sink(program.entry, sink, options.max_instructions);
  if (!out.total.halted) {
    throw std::runtime_error("evaluate_program: program did not halt");
  }
  for (unsigned slot = 0; slot < kSignatureSlots; ++slot) {
    out.signatures.push_back(cpu.read_word(program.signature_address(slot)));
  }
  out.stages.trace = seconds_since(t_trace);

  // ---- per-component grading plan -----------------------------------------
  // Serial planning phase: fetch every session artifact up front (references
  // must be taken before fan-out; with the cache off a repeated fetch would
  // replace the object) and decompose each CUT's grading into chunk tasks.
  const ObserveMode mode = observe_mode(options);
  const bool reference = options.sim.engine == fault::Engine::kReference;
  const std::vector<fault::FaultModel> models =
      options.fault_models.empty()
          ? std::vector<fault::FaultModel>{fault::FaultModel::kStuckAt}
          : options.fault_models;
  std::vector<fault::EngineContext> ctxs;
  ctxs.reserve(model.components().size());  // plan tasks keep pointers in
  out.cuts.reserve(model.components().size() * models.size());
  fault::GradingPlan plan;
  for (const ComponentInfo& info : model.components()) {
    auto t_compile = Clock::now();
    const std::uint8_t* reach = nullptr;
    const netlist::CompiledNetlist* compiled = nullptr;
    if (!reference) {
      // Cone first: with the cache off it (re)builds compiled + observe, so
      // the references fetched after it stay the live objects.
      reach = session.cone(info.id, mode).data();
      const bool opt = options.sim.netlist_opt < 0
                           ? fault::default_netlist_opt()
                           : options.sim.netlist_opt != 0;
      compiled = &session.compiled(info.id,
                                   opt ? netlist::CompileOptions::all()
                                       : netlist::CompileOptions{});
    }
    const fault::ObserveSet& obs = session.observe(info.id, mode);
    const fault::EngineContext& ctx = ctxs.emplace_back(
        options.sim.engine, info.netlist, obs, compiled, reach,
        options.sim.lanes, options.sim.netlist_opt);
    out.stages.compile += seconds_since(t_compile);

    const fault::PatternSet* patterns = nullptr;
    const fault::SeqStimulus* stimulus = nullptr;
    switch (info.id) {
      case CutId::kAlu: patterns = &trace.alu_patterns(); break;
      case CutId::kShifter: patterns = &trace.shifter_patterns(); break;
      case CutId::kMultiplier: patterns = &trace.multiplier_patterns(); break;
      case CutId::kControl: patterns = &trace.control_patterns(); break;
      case CutId::kForwarding: patterns = &trace.forwarding_patterns(); break;
      case CutId::kBranchAdder:
        patterns = &trace.branch_adder_patterns();
        break;
      case CutId::kDivider: stimulus = &trace.divider_stimulus(); break;
      case CutId::kRegisterFile: stimulus = &trace.regfile_stimulus(); break;
      case CutId::kMemCtrl: stimulus = &trace.memctrl_stimulus(); break;
      case CutId::kPipeline: stimulus = &trace.pipeline_stimulus(); break;
    }

    for (const fault::FaultModel fm : models) {
      // Transition detection needs launch/capture pattern PAIRS; the clocked
      // stimuli have no pairing semantics, so sequential CUTs get no row.
      if (fm == fault::FaultModel::kTransition && !patterns) continue;

      auto t_collapse = Clock::now();
      const fault::FaultUniverse& universe = session.universe(info.id, fm);
      out.stages.collapse += seconds_since(t_collapse);

      CutCoverage cc;
      cc.id = info.id;
      cc.model = fm;
      cc.collapsed_faults = universe.size();
      cc.uncollapsed_faults = universe.uncollapsed_count();
      cc.stimulus_size = patterns ? patterns->size() : stimulus->size();
      out.cuts.push_back(std::move(cc));
      // detected_flags lives on the heap, so the chunk tasks' flag pointers
      // survive out.cuts growing.
      if (patterns) {
        plan.add_comb(ctx, universe.collapsed(), *patterns,
                      options.sim.lane_parallel, out.cuts.back().coverage);
      } else {
        plan.add_seq(ctx, universe.collapsed(), *stimulus,
                     out.cuts.back().coverage);
      }
    }
  }

  auto t_grade = Clock::now();
  plan.run(session.pool());
  for (CutCoverage& cc : out.cuts) cc.coverage.recount();
  out.stages.grade = seconds_since(t_grade);

  // ---- standalone per-routine statistics ----------------------------------
  auto t_standalone = Clock::now();
  std::vector<TestProgram> standalones;
  standalones.reserve(program.routines.size());
  out.routines.resize(program.routines.size());
  fault::GradingPlan runs;
  for (std::size_t i = 0; i < program.routines.size(); ++i) {
    const Routine& r = program.routines[i];
    standalones.push_back(builder.build_standalone(r));
    const TestProgram& standalone = standalones.back();
    RoutineStats& rs = out.routines[i];
    rs.name = r.name;
    rs.style = r.style;
    rs.size_words = program.sections[i].size_words();
    // Predecode serially (session caches are not for the pool workers);
    // each task shares the immutable micro-op image.
    runs.add_task([&standalone, &rs, &options,
                   decoded = session.decoded(standalone.image)] {
      sim::Cpu solo(options.cpu);
      solo.reset();
      solo.load(standalone.image, decoded);
      rs.exec = solo.run(standalone.entry, options.max_instructions);
    });
  }
  runs.run(session.pool());
  out.stages.standalone = seconds_since(t_standalone);

  // ---- optional outcome classification ------------------------------------
  // A sampled end-to-end injection campaign per injectable CUT: each fault
  // gets a guarded whole-program faulty run and a RunOutcome, splitting the
  // CUT's detections into signature vs symptom the way an on-line monitor
  // would see them.
  if (options.classify_outcomes) {
    for (CutCoverage& cc : out.cuts) {
      if (cc.id != CutId::kAlu && cc.id != CutId::kShifter &&
          cc.id != CutId::kMultiplier) {
        continue;
      }
      const std::vector<fault::Fault>& all =
          session.universe(cc.id, cc.model).collapsed();
      std::vector<fault::Fault> sample = all;
      if (options.outcome_sample != 0 &&
          sample.size() > options.outcome_sample) {
        sample.resize(options.outcome_sample);
      }
      cc.outcomes = histogram_of(run_injection_campaign(
          session, program, cc.id, sample, options.cpu, options.inject));
    }
  }
  return out;
}

ProgramEvaluation evaluate_program(const ProcessorModel& model,
                                   const TestProgramBuilder& builder,
                                   const TestProgram& program,
                                   const EvalOptions& options) {
  GradingSession session(model, {.num_threads = options.sim.num_threads,
                                 .lanes = options.sim.lanes,
                                 .netlist_opt = options.sim.netlist_opt});
  return evaluate_program(session, builder, program, options);
}

}  // namespace sbst::core
