#include "core/session.hpp"

#include "common/hash.hpp"
#include "common/serialize.hpp"
#include "fault/engine.hpp"

namespace sbst::core {

namespace {

// In-memory scan accelerator for the program-level caches; every probe
// still compares the full key. (Bit-compatible with common::fnv1a_bytes
// folded over little-endian u64 values.)
std::uint64_t fnv64(std::uint64_t h, std::uint64_t v) {
  return common::fnv1a_mix_u64(h, v);
}

std::uint64_t hash_image(const isa::Program& image) {
  std::uint64_t h = common::kFnvOffsetBasis;
  h = fnv64(h, image.base);
  h = fnv64(h, image.words.size());
  for (const std::uint32_t w : image.words) h = fnv64(h, w);
  return h;
}

std::uint64_t hash_cache_config(std::uint64_t h, const sim::CacheConfig& c) {
  h = fnv64(h, c.enabled);
  h = fnv64(h, c.line_words);
  h = fnv64(h, c.lines);
  return fnv64(h, c.miss_penalty);
}

std::uint64_t hash_cpu_config(std::uint64_t h, const sim::CpuConfig& c) {
  h = fnv64(h, c.forwarding);
  h = fnv64(h, c.mem_access_cycles);
  h = fnv64(h, c.mult_cycles);
  h = fnv64(h, c.div_cycles);
  h = fnv64(h, c.branch_taken_penalty);
  h = fnv64(h, c.mem_bytes);
  h = hash_cache_config(h, c.icache);
  return hash_cache_config(h, c.dcache);
}

bool cache_config_equal(const sim::CacheConfig& a, const sim::CacheConfig& b) {
  return a.enabled == b.enabled && a.line_words == b.line_words &&
         a.lines == b.lines && a.miss_penalty == b.miss_penalty;
}

bool cpu_config_equal(const sim::CpuConfig& a, const sim::CpuConfig& b) {
  return a.forwarding == b.forwarding &&
         a.mem_access_cycles == b.mem_access_cycles &&
         a.mult_cycles == b.mult_cycles && a.div_cycles == b.div_cycles &&
         a.branch_taken_penalty == b.branch_taken_penalty &&
         a.mem_bytes == b.mem_bytes &&
         cache_config_equal(a.icache, b.icache) &&
         cache_config_equal(a.dcache, b.dcache);
}

// ---- canonical artifact keys ----------------------------------------------
// One constructor per kind, zeroing every irrelevant axis (see ArtifactKey).
// Compiled netlists use fault::compiled_store_key so the session and
// EngineContext agree on the key.

store::ArtifactKey universe_key(const netlist::Netlist& nl,
                                fault::FaultModel model) {
  store::ArtifactKey k;
  k.kind = "universe";
  k.version = fault::FaultUniverse::kSerialVersion;
  k.mode = static_cast<std::uint8_t>(model);
  k.content = nl.content_hash();
  return k;
}

store::ArtifactKey observe_key(CutId id, ObserveMode mode,
                               const netlist::Netlist& nl) {
  store::ArtifactKey k;
  k.kind = "observe";
  k.cut = static_cast<std::uint32_t>(id);
  k.mode = static_cast<std::uint8_t>(mode);
  k.content = nl.content_hash();
  return k;
}

store::ArtifactKey cone_key(CutId id, ObserveMode mode,
                            const netlist::Netlist& nl) {
  store::ArtifactKey k;
  k.kind = "cone";
  k.cut = static_cast<std::uint32_t>(id);
  k.mode = static_cast<std::uint8_t>(mode);
  k.content = nl.content_hash();
  return k;
}

store::ArtifactKey patterns_key(const netlist::Netlist& nl,
                                const std::string& tag) {
  store::ArtifactKey k;
  k.kind = "patterns";
  k.version = fault::PatternSet::kSerialVersion;
  k.content = nl.content_hash();
  k.tag = tag;
  return k;
}

// ---- program-scoped store keys and the good-run codec ---------------------
// Decoded programs and good runs are keyed by the full program image (plus
// run parameters), not a hash of it: the store compares key bytes verbatim,
// so carrying the real key material rules out collision aliasing outright.

std::vector<std::uint8_t> decoded_key_bytes(const isa::Program& image) {
  common::ByteWriter w;
  w.put_u32(isa::DecodedProgram::kSerialVersion);
  w.put_u32(image.base);
  w.put_vec_u32(image.words);
  return w.take();
}

constexpr std::uint32_t kGoodRunSerialVersion = 1;

void put_cache_config(common::ByteWriter& w, const sim::CacheConfig& c) {
  w.put_bool(c.enabled);
  w.put_u64(c.line_words);
  w.put_u64(c.lines);
  w.put_u64(c.miss_penalty);
}

std::vector<std::uint8_t> goodrun_key_bytes(const TestProgram& program,
                                            const sim::CpuConfig& config) {
  common::ByteWriter w;
  w.put_u32(kGoodRunSerialVersion);
  w.put_u32(program.image.base);
  w.put_u32(program.entry);
  w.put_u32(program.signature_base);
  w.put_vec_u32(program.image.words);
  w.put_bool(config.forwarding);
  w.put_u64(config.mem_access_cycles);
  w.put_u64(config.mult_cycles);
  w.put_u64(config.div_cycles);
  w.put_u64(config.branch_taken_penalty);
  w.put_u64(config.mem_bytes);
  put_cache_config(w, config.icache);
  put_cache_config(w, config.dcache);
  return w.take();
}

std::vector<std::uint8_t> serialize_good_run(const GoodRun& run) {
  common::ByteWriter w;
  w.put_u32(kGoodRunSerialVersion);
  const sim::ExecStats& s = run.stats;
  w.put_u64(s.instructions);
  w.put_u64(s.cpu_cycles);
  w.put_u64(s.pipeline_stall_cycles);
  w.put_u64(s.memory_stall_cycles);
  w.put_u64(s.loads);
  w.put_u64(s.stores);
  w.put_u64(s.icache_misses);
  w.put_u64(s.dcache_misses);
  w.put_u64(s.icache_accesses);
  w.put_u64(s.dcache_accesses);
  w.put_bool(s.halted);
  w.put_vec_u32(run.signatures);
  return w.take();
}

bool deserialize_good_run(common::ByteReader& r, GoodRun& out) {
  if (r.get_u32() != kGoodRunSerialVersion) return false;
  sim::ExecStats& s = out.stats;
  s.instructions = r.get_u64();
  s.cpu_cycles = r.get_u64();
  s.pipeline_stall_cycles = r.get_u64();
  s.memory_stall_cycles = r.get_u64();
  s.loads = r.get_u64();
  s.stores = r.get_u64();
  s.icache_misses = r.get_u64();
  s.dcache_misses = r.get_u64();
  s.icache_accesses = r.get_u64();
  s.dcache_accesses = r.get_u64();
  s.halted = r.get_bool();
  out.signatures = r.get_vec_u32();
  return r.at_end() && out.signatures.size() == kSignatureSlots;
}

}  // namespace

fault::ObserveSet observation_points(const ComponentInfo& info,
                                     ObserveMode mode) {
  const netlist::Netlist& nl = info.netlist;
  if (mode == ObserveMode::kFullNetlist) return nl.output_nets();
  fault::ObserveSet obs;
  auto add_port = [&](const char* name) {
    const netlist::Bus& bus = nl.output_port(name);
    obs.insert(obs.end(), bus.begin(), bus.end());
  };
  switch (info.id) {
    case CutId::kAlu:
      // cout/ovf are not MIPS-visible flags; result and the branch zero
      // condition are.
      add_port("result");
      add_port("zero");
      break;
    case CutId::kDivider:
      add_port("quotient");
      add_port("remainder");
      break;
    case CutId::kMemCtrl:
      add_port("rdata");      // load data -> register -> MISR
      add_port("mem_wdata");  // store data reaches memory, later reloaded
      add_port("byte_en");
      if (mode == ObserveMode::kArchitecturalPlusAddress) {
        add_port("mem_addr");  // A-VC
      }
      break;
    default:
      return nl.output_nets();
  }
  return obs;
}

GradingSession::GradingSession(const ProcessorModel& model,
                               const SessionOptions& options)
    : model_(&model),
      options_(options),
      pool_(fault::resolve_thread_count(options.num_threads)) {}

unsigned GradingSession::lanes() const {
  const unsigned lanes =
      options_.lanes == 0 ? fault::default_lanes() : options_.lanes;
  return lanes == 4 ? 4 : 1;
}

netlist::CompileOptions GradingSession::compile_options() const {
  const bool opt = options_.netlist_opt < 0 ? fault::default_netlist_opt()
                                            : options_.netlist_opt != 0;
  return opt ? netlist::CompileOptions::all() : netlist::CompileOptions{};
}

std::optional<std::vector<std::uint8_t>> GradingSession::probe_store(
    const store::ArtifactKey& key) {
  return probe_store(key.kind, key.bytes());
}

std::optional<std::vector<std::uint8_t>> GradingSession::probe_store(
    const std::string& kind, const std::vector<std::uint8_t>& key_bytes) {
  if (!options_.store) return std::nullopt;
  ++stats_.store_loads;
  auto payload = options_.store->load(kind, key_bytes);
  if (!payload) ++stats_.store_misses;
  return payload;
}

void GradingSession::write_store(const store::ArtifactKey& key,
                                 const std::vector<std::uint8_t>& payload) {
  write_store(key.kind, key.bytes(), payload);
}

void GradingSession::write_store(const std::string& kind,
                                 const std::vector<std::uint8_t>& key_bytes,
                                 const std::vector<std::uint8_t>& payload) {
  if (!options_.store) return;
  if (options_.store->save(kind, key_bytes, payload)) ++stats_.store_writes;
}

const fault::FaultUniverse& GradingSession::universe(CutId id) {
  return universe(id, fault::FaultModel::kStuckAt);
}

const fault::FaultUniverse& GradingSession::universe(CutId id,
                                                     fault::FaultModel model) {
  std::lock_guard<std::mutex> lock(mutex_);
  const netlist::Netlist& nl = model_->component(id).netlist;
  const store::ArtifactKey key = universe_key(nl, model);
  ArtifactSlot& slot = artifacts_[key];
  if (slot.universe && options_.cache) {
    ++stats_.universe_hits;
    return *slot.universe;
  }
  if (auto payload = probe_store(key)) {
    common::ByteReader r(*payload);
    auto u = fault::FaultUniverse::deserialize(nl, r);
    // A payload whose embedded model disagrees with the key is corrupt (or
    // hand-edited); treat it like any other invalid entry and rebuild.
    if (u && u->model() == model) {
      ++stats_.store_hits;
      slot.universe = std::move(u);
      return *slot.universe;
    }
    ++stats_.store_invalid;
  }
  ++stats_.universe_builds;
  slot.universe = std::make_unique<fault::FaultUniverse>(nl, model);
  if (options_.store) {
    common::ByteWriter w;
    slot.universe->serialize(w);
    write_store(key, w.bytes());
  }
  return *slot.universe;
}

const netlist::CompiledNetlist& GradingSession::compiled_locked(
    CutId id, const netlist::CompileOptions& opts) {
  const netlist::Netlist& nl = model_->component(id).netlist;
  const store::ArtifactKey key = fault::compiled_store_key(nl, opts, lanes());
  ArtifactSlot& slot = artifacts_[key];
  if (slot.compiled && options_.cache) {
    ++stats_.compile_hits;
    return *slot.compiled;
  }
  if (auto payload = probe_store(key)) {
    common::ByteReader r(*payload);
    auto cn = netlist::CompiledNetlist::deserialize(nl, r);
    if (cn && cn->options() == opts) {
      ++stats_.store_hits;
      slot.compiled = std::move(cn);
      return *slot.compiled;
    }
    ++stats_.store_invalid;
  }
  ++stats_.compile_builds;
  slot.compiled = std::make_unique<netlist::CompiledNetlist>(nl, opts);
  if (options_.store) {
    common::ByteWriter w;
    slot.compiled->serialize(w);
    write_store(key, w.bytes());
  }
  return *slot.compiled;
}

const netlist::CompiledNetlist& GradingSession::compiled(CutId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return compiled_locked(id, compile_options());
}

const netlist::CompiledNetlist& GradingSession::compiled(
    CutId id, const netlist::CompileOptions& opts) {
  std::lock_guard<std::mutex> lock(mutex_);
  return compiled_locked(id, opts);
}

const fault::ObserveSet& GradingSession::observe_locked(CutId id,
                                                        ObserveMode mode) {
  const ComponentInfo& info = model_->component(id);
  ArtifactSlot& slot = artifacts_[observe_key(id, mode, info.netlist)];
  if (slot.observe && options_.cache) {
    ++stats_.observe_hits;
    return *slot.observe;
  }
  ++stats_.observe_builds;
  slot.observe =
      std::make_unique<fault::ObserveSet>(observation_points(info, mode));
  return *slot.observe;
}

const fault::ObserveSet& GradingSession::observe(CutId id, ObserveMode mode) {
  std::lock_guard<std::mutex> lock(mutex_);
  return observe_locked(id, mode);
}

const std::vector<std::uint8_t>& GradingSession::cone(CutId id,
                                                      ObserveMode mode) {
  std::lock_guard<std::mutex> lock(mutex_);
  const netlist::Netlist& nl = model_->component(id).netlist;
  ArtifactSlot& slot = artifacts_[cone_key(id, mode, nl)];
  if (slot.cone && options_.cache) {
    ++stats_.cone_hits;
    return *slot.cone;
  }
  // The cone derives from the compiled netlist and the observe set; fetch
  // both through the cache so a cone build warms them too. fanin_cone
  // traverses ORIGINAL edges, so the cone is identical for every
  // CompileOptions and the mode alone keys this slot.
  const netlist::CompiledNetlist& cn = compiled_locked(id, compile_options());
  const fault::ObserveSet& obs = observe_locked(id, mode);
  ++stats_.cone_builds;
  slot.cone = std::make_unique<std::vector<std::uint8_t>>(cn.fanin_cone(obs));
  return *slot.cone;
}

std::shared_ptr<const isa::DecodedProgram> GradingSession::decoded_locked(
    const isa::Program& image) {
  // Store probe / predecode / write-back for one image: shared by the cold
  // path and the cache-off rebuild path, so both honor the store contract.
  auto make_decoded = [&]() -> std::shared_ptr<const isa::DecodedProgram> {
    if (auto payload = probe_store("decoded", decoded_key_bytes(image))) {
      common::ByteReader r(*payload);
      if (auto dp = isa::DecodedProgram::deserialize(r)) {
        ++stats_.store_hits;
        return std::shared_ptr<const isa::DecodedProgram>(std::move(dp));
      }
      ++stats_.store_invalid;
    }
    ++stats_.decode_builds;
    auto dp = std::make_shared<const isa::DecodedProgram>(image);
    if (options_.store) {
      common::ByteWriter w;
      dp->serialize(w);
      write_store("decoded", decoded_key_bytes(image), w.bytes());
    }
    return dp;
  };

  const std::uint64_t h = hash_image(image);
  for (DecodedEntry& e : decoded_cache_) {
    if (e.hash != h || e.base != image.base || e.words != image.words) {
      continue;
    }
    if (options_.cache) {
      ++stats_.decode_hits;
      return e.decoded;
    }
    e.decoded = make_decoded();
    return e.decoded;
  }
  DecodedEntry e;
  e.hash = h;
  e.base = image.base;
  e.words = image.words;
  e.decoded = make_decoded();
  decoded_cache_.push_back(std::move(e));
  return decoded_cache_.back().decoded;
}

std::shared_ptr<const isa::DecodedProgram> GradingSession::decoded(
    const isa::Program& image) {
  std::lock_guard<std::mutex> lock(mutex_);
  return decoded_locked(image);
}

const GoodRun& GradingSession::good_run(const TestProgram& program,
                                        const sim::CpuConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t h = hash_image(program.image);
  h = fnv64(h, program.entry);
  h = fnv64(h, program.signature_base);
  h = hash_cpu_config(h, config);
  GoodRunEntry* found = nullptr;
  for (GoodRunEntry& e : goodrun_cache_) {
    if (e.hash == h && e.base == program.image.base &&
        e.entry == program.entry &&
        e.signature_base == program.signature_base &&
        cpu_config_equal(e.config, config) &&
        e.words == program.image.words) {
      found = &e;
      break;
    }
  }
  if (found && options_.cache) {
    ++stats_.goodrun_hits;
    return found->run;
  }
  GoodRun run;
  bool from_store = false;
  if (auto payload = probe_store("goodrun", goodrun_key_bytes(program, config))) {
    common::ByteReader r(*payload);
    if (deserialize_good_run(r, run)) {
      ++stats_.store_hits;
      from_store = true;
    } else {
      ++stats_.store_invalid;
      run = GoodRun{};
    }
  }
  if (!from_store) {
    ++stats_.goodrun_builds;
    sim::Cpu cpu(config);
    cpu.reset();
    cpu.load(program.image, decoded_locked(program.image));
    run.stats = cpu.run(program.entry);
    for (unsigned s = 0; s < kSignatureSlots; ++s) {
      run.signatures.push_back(cpu.read_word(program.signature_address(s)));
    }
    if (options_.store) {
      write_store("goodrun", goodrun_key_bytes(program, config),
                  serialize_good_run(run));
    }
  }
  if (found) {
    found->run = std::move(run);
    return found->run;
  }
  GoodRunEntry e;
  e.hash = h;
  e.base = program.image.base;
  e.entry = program.entry;
  e.signature_base = program.signature_base;
  e.words = program.image.words;
  e.config = config;
  e.run = std::move(run);
  goodrun_cache_.push_back(std::move(e));
  return goodrun_cache_.back().run;
}

const fault::PatternSet& GradingSession::patterns(
    CutId id, const std::string& tag,
    const std::function<fault::PatternSet(const netlist::Netlist&)>& build) {
  const netlist::Netlist& nl = model_->component(id).netlist;
  const store::ArtifactKey key = patterns_key(nl, tag);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ArtifactSlot& slot = artifacts_[key];
    if (slot.patterns && options_.cache) {
      ++stats_.patterns_hits;
      return *slot.patterns;
    }
    if (auto payload = probe_store(key)) {
      common::ByteReader r(*payload);
      if (auto ps = fault::PatternSet::deserialize(nl, r)) {
        ++stats_.store_hits;
        slot.patterns = std::move(ps);
        return *slot.patterns;
      }
      ++stats_.store_invalid;
    }
  }
  // The builder runs with the session unlocked so it can use the other
  // accessors (ATPG builders typically fetch compiled()).
  auto built = std::make_unique<fault::PatternSet>(build(nl));
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.patterns_builds;
  ArtifactSlot& slot = artifacts_[key];
  if (slot.patterns && options_.cache) {
    // Lost a concurrent build race; keep the published object so references
    // already handed out stay valid.
    return *slot.patterns;
  }
  slot.patterns = std::move(built);
  if (options_.store) {
    common::ByteWriter w;
    slot.patterns->serialize(w);
    write_store(key, w.bytes());
  }
  return *slot.patterns;
}

SessionStats GradingSession::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace sbst::core
