#include "core/session.hpp"

namespace sbst::core {

namespace {

// 64-bit FNV-1a folded over 8-byte values; only a scan accelerator — every
// cache probe still compares the full key.
std::uint64_t fnv64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hash_image(const isa::Program& image) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv64(h, image.base);
  h = fnv64(h, image.words.size());
  for (const std::uint32_t w : image.words) h = fnv64(h, w);
  return h;
}

std::uint64_t hash_cache_config(std::uint64_t h, const sim::CacheConfig& c) {
  h = fnv64(h, c.enabled);
  h = fnv64(h, c.line_words);
  h = fnv64(h, c.lines);
  return fnv64(h, c.miss_penalty);
}

std::uint64_t hash_cpu_config(std::uint64_t h, const sim::CpuConfig& c) {
  h = fnv64(h, c.forwarding);
  h = fnv64(h, c.mem_access_cycles);
  h = fnv64(h, c.mult_cycles);
  h = fnv64(h, c.div_cycles);
  h = fnv64(h, c.branch_taken_penalty);
  h = fnv64(h, c.mem_bytes);
  h = hash_cache_config(h, c.icache);
  return hash_cache_config(h, c.dcache);
}

bool cache_config_equal(const sim::CacheConfig& a, const sim::CacheConfig& b) {
  return a.enabled == b.enabled && a.line_words == b.line_words &&
         a.lines == b.lines && a.miss_penalty == b.miss_penalty;
}

bool cpu_config_equal(const sim::CpuConfig& a, const sim::CpuConfig& b) {
  return a.forwarding == b.forwarding &&
         a.mem_access_cycles == b.mem_access_cycles &&
         a.mult_cycles == b.mult_cycles && a.div_cycles == b.div_cycles &&
         a.branch_taken_penalty == b.branch_taken_penalty &&
         a.mem_bytes == b.mem_bytes &&
         cache_config_equal(a.icache, b.icache) &&
         cache_config_equal(a.dcache, b.dcache);
}

}  // namespace

fault::ObserveSet observation_points(const ComponentInfo& info,
                                     ObserveMode mode) {
  const netlist::Netlist& nl = info.netlist;
  if (mode == ObserveMode::kFullNetlist) return nl.output_nets();
  fault::ObserveSet obs;
  auto add_port = [&](const char* name) {
    const netlist::Bus& bus = nl.output_port(name);
    obs.insert(obs.end(), bus.begin(), bus.end());
  };
  switch (info.id) {
    case CutId::kAlu:
      // cout/ovf are not MIPS-visible flags; result and the branch zero
      // condition are.
      add_port("result");
      add_port("zero");
      break;
    case CutId::kDivider:
      add_port("quotient");
      add_port("remainder");
      break;
    case CutId::kMemCtrl:
      add_port("rdata");      // load data -> register -> MISR
      add_port("mem_wdata");  // store data reaches memory, later reloaded
      add_port("byte_en");
      if (mode == ObserveMode::kArchitecturalPlusAddress) {
        add_port("mem_addr");  // A-VC
      }
      break;
    default:
      return nl.output_nets();
  }
  return obs;
}

GradingSession::GradingSession(const ProcessorModel& model,
                               const SessionOptions& options)
    : model_(&model),
      options_(options),
      cache_(model.components().size()),
      pool_(fault::resolve_thread_count(options.num_threads)) {}

unsigned GradingSession::lanes() const {
  const unsigned lanes =
      options_.lanes == 0 ? fault::default_lanes() : options_.lanes;
  return lanes == 4 ? 4 : 1;
}

netlist::CompileOptions GradingSession::compile_options() const {
  const bool opt = options_.netlist_opt < 0 ? fault::default_netlist_opt()
                                            : options_.netlist_opt != 0;
  return opt ? netlist::CompileOptions::all() : netlist::CompileOptions{};
}

const fault::FaultUniverse& GradingSession::universe(CutId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot_ptr = slot(id).universe;
  if (slot_ptr && options_.cache) {
    ++stats_.universe_hits;
    return *slot_ptr;
  }
  ++stats_.universe_builds;
  slot_ptr =
      std::make_unique<fault::FaultUniverse>(model_->component(id).netlist);
  return *slot_ptr;
}

const netlist::CompiledNetlist& GradingSession::compiled_locked(
    CutId id, const netlist::CompileOptions& opts) {
  auto& entries = slot(id).compiled;
  for (CompiledEntry& e : entries) {
    if (!(e.opts == opts)) continue;
    if (options_.cache) {
      ++stats_.compile_hits;
      return *e.compiled;
    }
    ++stats_.compile_builds;
    e.compiled = std::make_unique<netlist::CompiledNetlist>(
        model_->component(id).netlist, opts);
    return *e.compiled;
  }
  ++stats_.compile_builds;
  entries.push_back(CompiledEntry{
      opts, std::make_unique<netlist::CompiledNetlist>(
                model_->component(id).netlist, opts)});
  return *entries.back().compiled;
}

const netlist::CompiledNetlist& GradingSession::compiled(CutId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return compiled_locked(id, compile_options());
}

const netlist::CompiledNetlist& GradingSession::compiled(
    CutId id, const netlist::CompileOptions& opts) {
  std::lock_guard<std::mutex> lock(mutex_);
  return compiled_locked(id, opts);
}

const fault::ObserveSet& GradingSession::observe_locked(CutId id,
                                                        ObserveMode mode) {
  auto& slot_ptr = slot(id).observe[static_cast<std::size_t>(mode)];
  if (slot_ptr && options_.cache) {
    ++stats_.observe_hits;
    return *slot_ptr;
  }
  ++stats_.observe_builds;
  slot_ptr = std::make_unique<fault::ObserveSet>(
      observation_points(model_->component(id), mode));
  return *slot_ptr;
}

const fault::ObserveSet& GradingSession::observe(CutId id, ObserveMode mode) {
  std::lock_guard<std::mutex> lock(mutex_);
  return observe_locked(id, mode);
}

const std::vector<std::uint8_t>& GradingSession::cone(CutId id,
                                                      ObserveMode mode) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot_ptr = slot(id).cone[static_cast<std::size_t>(mode)];
  if (slot_ptr && options_.cache) {
    ++stats_.cone_hits;
    return *slot_ptr;
  }
  // The cone derives from the compiled netlist and the observe set; fetch
  // both through the cache so a cone build warms them too. fanin_cone
  // traverses ORIGINAL edges, so the cone is identical for every
  // CompileOptions and the mode alone keys this slot.
  const netlist::CompiledNetlist& cn = compiled_locked(id, compile_options());
  const fault::ObserveSet& obs = observe_locked(id, mode);
  ++stats_.cone_builds;
  slot_ptr = std::make_unique<std::vector<std::uint8_t>>(cn.fanin_cone(obs));
  return *slot_ptr;
}

std::shared_ptr<const isa::DecodedProgram> GradingSession::decoded_locked(
    const isa::Program& image) {
  const std::uint64_t h = hash_image(image);
  for (DecodedEntry& e : decoded_cache_) {
    if (e.hash != h || e.base != image.base || e.words != image.words) {
      continue;
    }
    if (options_.cache) {
      ++stats_.decode_hits;
      return e.decoded;
    }
    ++stats_.decode_builds;
    e.decoded = std::make_shared<const isa::DecodedProgram>(image);
    return e.decoded;
  }
  ++stats_.decode_builds;
  DecodedEntry e;
  e.hash = h;
  e.base = image.base;
  e.words = image.words;
  e.decoded = std::make_shared<const isa::DecodedProgram>(image);
  decoded_cache_.push_back(std::move(e));
  return decoded_cache_.back().decoded;
}

std::shared_ptr<const isa::DecodedProgram> GradingSession::decoded(
    const isa::Program& image) {
  std::lock_guard<std::mutex> lock(mutex_);
  return decoded_locked(image);
}

const GoodRun& GradingSession::good_run(const TestProgram& program,
                                        const sim::CpuConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t h = hash_image(program.image);
  h = fnv64(h, program.entry);
  h = fnv64(h, program.signature_base);
  h = hash_cpu_config(h, config);
  GoodRunEntry* found = nullptr;
  for (GoodRunEntry& e : goodrun_cache_) {
    if (e.hash == h && e.base == program.image.base &&
        e.entry == program.entry &&
        e.signature_base == program.signature_base &&
        cpu_config_equal(e.config, config) &&
        e.words == program.image.words) {
      found = &e;
      break;
    }
  }
  if (found && options_.cache) {
    ++stats_.goodrun_hits;
    return found->run;
  }
  ++stats_.goodrun_builds;
  GoodRun run;
  {
    sim::Cpu cpu(config);
    cpu.reset();
    cpu.load(program.image, decoded_locked(program.image));
    run.stats = cpu.run(program.entry);
    for (unsigned s = 0; s < kSignatureSlots; ++s) {
      run.signatures.push_back(cpu.read_word(program.signature_address(s)));
    }
  }
  if (found) {
    found->run = std::move(run);
    return found->run;
  }
  GoodRunEntry e;
  e.hash = h;
  e.base = program.image.base;
  e.entry = program.entry;
  e.signature_base = program.signature_base;
  e.words = program.image.words;
  e.config = config;
  e.run = std::move(run);
  goodrun_cache_.push_back(std::move(e));
  return goodrun_cache_.back().run;
}

SessionStats GradingSession::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace sbst::core
