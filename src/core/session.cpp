#include "core/session.hpp"

namespace sbst::core {

fault::ObserveSet observation_points(const ComponentInfo& info,
                                     ObserveMode mode) {
  const netlist::Netlist& nl = info.netlist;
  if (mode == ObserveMode::kFullNetlist) return nl.output_nets();
  fault::ObserveSet obs;
  auto add_port = [&](const char* name) {
    const netlist::Bus& bus = nl.output_port(name);
    obs.insert(obs.end(), bus.begin(), bus.end());
  };
  switch (info.id) {
    case CutId::kAlu:
      // cout/ovf are not MIPS-visible flags; result and the branch zero
      // condition are.
      add_port("result");
      add_port("zero");
      break;
    case CutId::kDivider:
      add_port("quotient");
      add_port("remainder");
      break;
    case CutId::kMemCtrl:
      add_port("rdata");      // load data -> register -> MISR
      add_port("mem_wdata");  // store data reaches memory, later reloaded
      add_port("byte_en");
      if (mode == ObserveMode::kArchitecturalPlusAddress) {
        add_port("mem_addr");  // A-VC
      }
      break;
    default:
      return nl.output_nets();
  }
  return obs;
}

GradingSession::GradingSession(const ProcessorModel& model,
                               const SessionOptions& options)
    : model_(&model),
      options_(options),
      cache_(model.components().size()),
      pool_(fault::resolve_thread_count(options.num_threads)) {}

const fault::FaultUniverse& GradingSession::universe(CutId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot_ptr = slot(id).universe;
  if (slot_ptr && options_.cache) {
    ++stats_.universe_hits;
    return *slot_ptr;
  }
  ++stats_.universe_builds;
  slot_ptr =
      std::make_unique<fault::FaultUniverse>(model_->component(id).netlist);
  return *slot_ptr;
}

const netlist::CompiledNetlist& GradingSession::compiled_locked(CutId id) {
  auto& slot_ptr = slot(id).compiled;
  if (slot_ptr && options_.cache) {
    ++stats_.compile_hits;
    return *slot_ptr;
  }
  ++stats_.compile_builds;
  slot_ptr =
      std::make_unique<netlist::CompiledNetlist>(model_->component(id).netlist);
  return *slot_ptr;
}

const netlist::CompiledNetlist& GradingSession::compiled(CutId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return compiled_locked(id);
}

const fault::ObserveSet& GradingSession::observe_locked(CutId id,
                                                        ObserveMode mode) {
  auto& slot_ptr = slot(id).observe[static_cast<std::size_t>(mode)];
  if (slot_ptr && options_.cache) {
    ++stats_.observe_hits;
    return *slot_ptr;
  }
  ++stats_.observe_builds;
  slot_ptr = std::make_unique<fault::ObserveSet>(
      observation_points(model_->component(id), mode));
  return *slot_ptr;
}

const fault::ObserveSet& GradingSession::observe(CutId id, ObserveMode mode) {
  std::lock_guard<std::mutex> lock(mutex_);
  return observe_locked(id, mode);
}

const std::vector<std::uint8_t>& GradingSession::cone(CutId id,
                                                      ObserveMode mode) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot_ptr = slot(id).cone[static_cast<std::size_t>(mode)];
  if (slot_ptr && options_.cache) {
    ++stats_.cone_hits;
    return *slot_ptr;
  }
  // The cone derives from the compiled netlist and the observe set; fetch
  // both through the cache so a cone build warms them too.
  const netlist::CompiledNetlist& cn = compiled_locked(id);
  const fault::ObserveSet& obs = observe_locked(id, mode);
  ++stats_.cone_builds;
  slot_ptr = std::make_unique<std::vector<std::uint8_t>>(cn.fanin_cone(obs));
  return *slot_ptr;
}

SessionStats GradingSession::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace sbst::core
