// Coverage evaluation: runs the SBST program on the CPU model, captures the
// pattern stream each component actually receives (via the tracing hooks),
// and fault-grades every component's gate-level netlist against it — the
// in-simulation equivalent of the paper's FlexTest runs.
//
// Observability follows the architecture: a component output counts as an
// observation point only if a self-test routine can propagate it (e.g. the
// ALU's internal carry-out is not a MIPS-visible flag; the memory
// controller's MAR is A-VC and excluded from the periodic test).
#pragma once

#include <vector>

#include "core/program.hpp"
#include "fault/fault.hpp"
#include "fault/pattern.hpp"
#include "fault/sim.hpp"
#include "fault/sim_parallel.hpp"
#include "sim/cpu.hpp"

namespace sbst::core {

/// Captures per-component stimulus from a program execution.
class TraceCollector : public sim::CpuHooks {
 public:
  explicit TraceCollector(const ProcessorModel& model);

  /// Restrict register-file capture to [begin, end) instruction addresses
  /// (the register-file routine section): every instruction exercises the
  /// register file, and grading tens of thousands of cycles against a 22k
  /// fault list is needlessly slow.
  void restrict_regfile(std::uint32_t begin_addr, std::uint32_t end_addr) {
    rf_begin_ = begin_addr;
    rf_end_ = end_addr;
  }
  /// Hard caps (cycles / unique patterns) as a second safety net.
  void set_regfile_cycle_cap(std::size_t cap) { rf_cap_ = cap; }
  void set_pipeline_cycle_cap(std::size_t cap) { pipe_cap_ = cap; }

  // CpuHooks:
  void on_instruction_start(std::uint32_t pc) override { pc_ = pc; }
  void on_alu(rtlgen::AluOp, std::uint32_t, std::uint32_t) override;
  void on_shift(rtlgen::ShiftOp, std::uint32_t, std::uint32_t) override;
  void on_mult(std::uint32_t, std::uint32_t) override;
  void on_div(std::uint32_t, std::uint32_t) override;
  void on_regfile(std::uint8_t, std::uint32_t, bool, std::uint8_t,
                  std::uint8_t) override;
  void on_mem(std::uint32_t, std::uint32_t, rtlgen::MemSize, bool, bool,
              std::uint32_t) override;
  void on_control(std::uint8_t, std::uint8_t) override;
  void on_forward(std::uint8_t, std::uint8_t, std::uint8_t, bool,
                  std::uint8_t, bool) override;
  void on_branch_flush() override;
  void on_branch_target(std::uint32_t, std::uint32_t) override;

  // Captured stimuli (deduplicated for the combinational components).
  const fault::PatternSet& alu_patterns() const { return alu_; }
  const fault::PatternSet& shifter_patterns() const { return shifter_; }
  const fault::PatternSet& multiplier_patterns() const { return mul_; }
  const fault::PatternSet& control_patterns() const { return control_; }
  const fault::PatternSet& forwarding_patterns() const { return fwd_; }
  const fault::PatternSet& branch_adder_patterns() const { return badd_; }
  const fault::SeqStimulus& divider_stimulus() const { return div_; }
  const fault::SeqStimulus& regfile_stimulus() const { return rf_; }
  const fault::SeqStimulus& memctrl_stimulus() const { return mem_; }
  const fault::SeqStimulus& pipeline_stimulus() const { return pipe_; }

 private:
  template <typename Tuple>
  bool fresh(std::set<Tuple>& seen, const Tuple& key) {
    return seen.insert(key).second;
  }

  std::uint32_t pc_ = 0;
  std::uint32_t rf_begin_ = 0, rf_end_ = ~0u;
  std::size_t rf_cap_ = 40000, pipe_cap_ = 4096;

  fault::PatternSet alu_, shifter_, mul_, control_, fwd_, badd_;
  fault::SeqStimulus div_, rf_, mem_, pipe_;

  std::set<std::tuple<std::uint8_t, std::uint32_t, std::uint32_t>> alu_seen_;
  std::set<std::tuple<std::uint8_t, std::uint32_t, std::uint32_t>>
      shift_seen_;
  std::set<std::tuple<std::uint32_t, std::uint32_t>> mul_seen_;
  std::set<std::tuple<std::uint8_t, std::uint8_t>> control_seen_;
  std::set<std::tuple<std::uint8_t, std::uint8_t, std::uint8_t, bool,
                      std::uint8_t, bool>>
      fwd_seen_;
  std::set<std::pair<std::uint32_t, std::uint32_t>> badd_seen_;
};

struct EvalOptions {
  /// Observe only architecturally propagatable outputs (paper-faithful).
  bool architectural_observability = true;
  /// Include the A-VC MAR outputs as observation points (ablation: what the
  /// paper deliberately leaves untested in periodic mode).
  bool observe_address_outputs = false;
  /// Fault-simulation options (evaluation engine, thread count, lane
  /// packing). Results are bitwise-identical for every engine and thread
  /// count.
  fault::SimOptions sim{};
  sim::CpuConfig cpu{};
  std::uint64_t max_instructions = 1u << 22;
};

struct CutCoverage {
  CutId id;
  fault::CoverageResult coverage;
  std::size_t collapsed_faults = 0;
  std::size_t uncollapsed_faults = 0;
  std::size_t stimulus_size = 0;  // patterns or cycles
};

struct RoutineStats {
  std::string name;
  std::string style;
  std::size_t size_words = 0;
  sim::ExecStats exec;  // standalone execution of just this routine
};

struct ProgramEvaluation {
  std::vector<CutCoverage> cuts;
  std::vector<RoutineStats> routines;
  sim::ExecStats total;                  // combined program execution
  std::vector<std::uint32_t> signatures; // fault-free signature words

  const CutCoverage& cut(CutId id) const;
  /// Overall processor fault coverage: detected / total over all components.
  double overall_fc() const;
  /// Contribution of a CUT's undetected faults to the missing overall
  /// coverage (the paper's "Miss. FC" column).
  double missing_fc(CutId id) const;
};

/// Full evaluation: runs the combined program with tracing, grades every
/// component, and runs each routine standalone for its Table-1 row.
ProgramEvaluation evaluate_program(const ProcessorModel& model,
                                   const TestProgramBuilder& builder,
                                   const TestProgram& program,
                                   const EvalOptions& options = {});

/// Observation points for a component under the given options.
fault::ObserveSet observation_points(const ComponentInfo& info,
                                     const EvalOptions& options);

}  // namespace sbst::core
