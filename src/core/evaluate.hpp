// Coverage evaluation: runs the SBST program on the CPU model, captures the
// pattern stream each component actually receives (via the tracing hooks),
// and fault-grades every component's gate-level netlist against it — the
// in-simulation equivalent of the paper's FlexTest runs.
//
// Observability follows the architecture: a component output counts as an
// observation point only if a self-test routine can propagate it (e.g. the
// ALU's internal carry-out is not a MIPS-visible flag; the memory
// controller's MAR is A-VC and excluded from the periodic test).
//
// Evaluation is structured as a task graph over a GradingSession: a serial
// traced run, then one flattened GradingPlan interleaving every CUT's
// fault-chunk tasks on the session pool (cross-CUT parallelism without
// oversubscription), then the standalone routine executions as a second
// task batch. Results are bitwise-identical for every engine, thread count,
// and cache setting.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/inject.hpp"
#include "core/program.hpp"
#include "core/session.hpp"
#include "fault/fault.hpp"
#include "fault/pattern.hpp"
#include "fault/sim.hpp"
#include "fault/sim_parallel.hpp"
#include "sim/cpu.hpp"

namespace sbst::core {

/// Packed dedup key for trace streams. Every hook packs its operands
/// injectively into 128 bits, and equality is exact (the hash only buckets),
/// so dedup semantics match the ordered-set-of-tuples this replaces — same
/// first-occurrence acceptance, hence identical PatternSets — without the
/// per-insert allocations and pointer chasing of a red-black tree.
struct TraceKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bool operator==(const TraceKey& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

struct TraceKeyHash {
  std::size_t operator()(const TraceKey& k) const {
    // splitmix64 finalizer — full avalanche so unordered_set buckets stay
    // balanced even for low-entropy packings (opcode/funct pairs).
    auto mix = [](std::uint64_t x) {
      x += 0x9e3779b97f4a7c15ull;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      return x ^ (x >> 31);
    };
    return static_cast<std::size_t>(mix(k.lo ^ mix(k.hi)));
  }
};

using TraceKeySet = std::unordered_set<TraceKey, TraceKeyHash>;

/// Captures per-component stimulus from a program execution.
class TraceCollector final : public sim::CpuHooks {
 public:
  explicit TraceCollector(const ProcessorModel& model);

  /// Restrict register-file capture to [begin, end) instruction addresses
  /// (the register-file routine section): every instruction exercises the
  /// register file, and grading tens of thousands of cycles against a 22k
  /// fault list is needlessly slow.
  void restrict_regfile(std::uint32_t begin_addr, std::uint32_t end_addr) {
    rf_begin_ = begin_addr;
    rf_end_ = end_addr;
  }
  /// Hard caps (cycles / unique patterns) as a second safety net.
  void set_regfile_cycle_cap(std::size_t cap) { rf_cap_ = cap; }
  void set_pipeline_cycle_cap(std::size_t cap) { pipe_cap_ = cap; }

  // CpuHooks:
  void on_instruction_start(std::uint32_t pc) override { pc_ = pc; }
  void on_alu(rtlgen::AluOp, std::uint32_t, std::uint32_t) override;
  void on_shift(rtlgen::ShiftOp, std::uint32_t, std::uint32_t) override;
  void on_mult(std::uint32_t, std::uint32_t) override;
  void on_div(std::uint32_t, std::uint32_t) override;
  void on_regfile(std::uint8_t, std::uint32_t, bool, std::uint8_t,
                  std::uint8_t) override;
  void on_mem(std::uint32_t, std::uint32_t, rtlgen::MemSize, bool, bool,
              std::uint32_t) override;
  void on_control(std::uint8_t, std::uint8_t) override;
  void on_forward(std::uint8_t, std::uint8_t, std::uint8_t, bool,
                  std::uint8_t, bool) override;
  void on_branch_flush() override;
  void on_branch_target(std::uint32_t, std::uint32_t) override;

  // Captured stimuli (deduplicated for the combinational components).
  const fault::PatternSet& alu_patterns() const { return alu_; }
  const fault::PatternSet& shifter_patterns() const { return shifter_; }
  const fault::PatternSet& multiplier_patterns() const { return mul_; }
  const fault::PatternSet& control_patterns() const { return control_; }
  const fault::PatternSet& forwarding_patterns() const { return fwd_; }
  const fault::PatternSet& branch_adder_patterns() const { return badd_; }
  const fault::SeqStimulus& divider_stimulus() const { return div_; }
  const fault::SeqStimulus& regfile_stimulus() const { return rf_; }
  const fault::SeqStimulus& memctrl_stimulus() const { return mem_; }
  const fault::SeqStimulus& pipeline_stimulus() const { return pipe_; }

 private:
  static bool fresh(TraceKeySet& seen, const TraceKey& key) {
    return seen.insert(key).second;
  }

  std::uint32_t pc_ = 0;
  std::uint32_t rf_begin_ = 0, rf_end_ = ~0u;
  std::size_t rf_cap_ = 40000, pipe_cap_ = 4096;

  fault::PatternSet alu_, shifter_, mul_, control_, fwd_, badd_;
  fault::SeqStimulus div_, rf_, mem_, pipe_;

  TraceKeySet alu_seen_, shift_seen_, mul_seen_, control_seen_, fwd_seen_,
      badd_seen_;
};

struct EvalOptions {
  /// Observe only architecturally propagatable outputs (paper-faithful).
  bool architectural_observability = true;
  /// Include the A-VC MAR outputs as observation points (ablation: what the
  /// paper deliberately leaves untested in periodic mode).
  bool observe_address_outputs = false;
  /// Fault-simulation options (evaluation engine, thread count, lane
  /// packing). Results are bitwise-identical for every engine and thread
  /// count. When evaluating through a GradingSession, the session's pool is
  /// used and `sim.num_threads` / `sim.pool` are ignored.
  fault::SimOptions sim{};
  sim::CpuConfig cpu{};
  std::uint64_t max_instructions = 1u << 22;
  /// Trace caps forwarded to TraceCollector (defaults preserve the
  /// long-standing behavior; tests shrink them to keep differential matrices
  /// fast).
  std::size_t regfile_cycle_cap = 40000;
  std::size_t pipeline_cycle_cap = 4096;
  /// Classify a sample of each injectable CUT's collapsed faults (ALU,
  /// shifter, multiplier) through full guarded faulty-machine runs, filling
  /// CutCoverage::outcomes with the signature-vs-symptom detection split.
  /// Off by default: each sampled fault costs one whole-program run.
  bool classify_outcomes = false;
  /// Collapsed-fault sample size per CUT for classify_outcomes (prefix of
  /// the collapsed universe; 0 = every collapsed fault).
  std::size_t outcome_sample = 32;
  /// Hardened-runtime knobs (watchdog budgets, store guard, retry) for the
  /// classify_outcomes campaigns.
  InjectOptions inject{};
  /// Fault models to grade each component under: one CutCoverage row per
  /// (component, model) pair, every model graded against the SAME captured
  /// trace. The default — stuck-at only — reproduces the legacy single-model
  /// evaluation exactly. Transition faults are combinational-only, so the
  /// sequential CUTs (divider, register file, memory controller, pipeline)
  /// get no transition row. Empty behaves as {kStuckAt}.
  std::vector<fault::FaultModel> fault_models = {fault::FaultModel::kStuckAt};
};

/// The observe-set cache mode EvalOptions' observability flags select.
ObserveMode observe_mode(const EvalOptions& options);

struct CutCoverage {
  CutId id;
  /// The fault model this row was graded under (EvalOptions::fault_models).
  fault::FaultModel model = fault::FaultModel::kStuckAt;
  fault::CoverageResult coverage;
  std::size_t collapsed_faults = 0;
  std::size_t uncollapsed_faults = 0;
  std::size_t stimulus_size = 0;  // patterns or cycles
  /// Outcome classes of the sampled injection campaign (empty unless
  /// EvalOptions::classify_outcomes and the CUT is injectable).
  OutcomeHistogram outcomes;
};

struct RoutineStats {
  std::string name;
  std::string style;
  std::size_t size_words = 0;
  sim::ExecStats exec;  // standalone execution of just this routine
};

/// Wall-clock seconds per evaluation stage (bench/table1 reporting).
struct EvalStageTimes {
  double trace = 0;       // combined traced run + signature readback
  double collapse = 0;    // fault-universe builds (collapsing)
  double compile = 0;     // netlist compile + observe sets + cone marking
  double grade = 0;       // fault grading of every CUT (the task graph)
  double standalone = 0;  // standalone per-routine builds + executions
};

struct ProgramEvaluation {
  std::vector<CutCoverage> cuts;
  std::vector<RoutineStats> routines;
  sim::ExecStats total;                  // combined program execution
  std::vector<std::uint32_t> signatures; // fault-free signature words
  EvalStageTimes stages;

  const CutCoverage& cut(CutId id) const;
  /// The (component, model) row; throws if that model was not graded.
  const CutCoverage& cut(CutId id, fault::FaultModel model) const;
  /// Overall processor fault coverage: detected / total over all graded
  /// (component, model) rows.
  double overall_fc() const;
  /// Contribution of a CUT's undetected faults to the missing overall
  /// coverage (the paper's "Miss. FC" column).
  double missing_fc(CutId id) const;
  /// Summed outcome histogram over every CUT's sampled injection campaign
  /// (all-zero unless EvalOptions::classify_outcomes).
  OutcomeHistogram outcome_totals() const;
};

/// Full evaluation through a GradingSession: runs the combined program with
/// tracing, grades every component as one flattened chunk-task batch on the
/// session pool (reusing the session's cached universes, compiled netlists,
/// observe sets, and cones), and runs each routine standalone for its
/// Table-1 row. Repeated calls on one session skip the artifact rebuilds.
ProgramEvaluation evaluate_program(GradingSession& session,
                                   const TestProgramBuilder& builder,
                                   const TestProgram& program,
                                   const EvalOptions& options = {});

/// Convenience overload: one-shot session (no artifact reuse), pool sized
/// from options.sim.num_threads. Results are identical to the session form.
ProgramEvaluation evaluate_program(const ProcessorModel& model,
                                   const TestProgramBuilder& builder,
                                   const TestProgram& program,
                                   const EvalOptions& options = {});

/// Observation points for a component under the given options.
fault::ObserveSet observation_points(const ComponentInfo& info,
                                     const EvalOptions& options);

}  // namespace sbst::core
