// Gate-level fault injection into program execution.
//
// Computes ALU / shifter / multiplier results through the component's
// *faulty* gate-level netlist during CPU simulation, so a stuck-at fault
// corrupts architectural state exactly as silicon would. Running the SBST
// program under injection and comparing the unloaded signature words
// against the fault-free run is the end-to-end detection check the whole
// methodology rests on (error identification via signatures, paper §3.3).
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <optional>

#include "core/component.hpp"
#include "fault/fault.hpp"
#include "netlist/compiled.hpp"
#include "netlist/eval.hpp"
#include "sim/cpu.hpp"

namespace sbst::core {

class GradingSession;

/// Classified ending of one faulty-machine execution, split the way an
/// on-line monitor sees it: a signature mismatch needs the test's unload
/// step, while hang / trap / wild store are symptoms the OS watchdog or MPU
/// reports without reading a single signature word.
enum class RunOutcome : std::uint8_t {
  kOkMatch = 0,         // ran to completion, signatures match (not detected)
  kDetectedMismatch,    // clean completion, signature words differ
  kDetectedHang,        // watchdog budget exhausted (instructions/cycles/stores)
  kDetectedTrap,        // illegal instruction, misaligned or bus error
  kDetectedWildStore,   // store outside the program's declared regions
  kInfraError,          // the simulation infrastructure itself failed
};

inline constexpr std::size_t kRunOutcomeCount = 6;

const char* run_outcome_name(RunOutcome outcome);

/// True for every outcome an on-line monitor counts as a detection
/// (everything but kOkMatch and kInfraError).
inline bool outcome_detected(RunOutcome outcome) {
  return outcome == RunOutcome::kDetectedMismatch ||
         outcome == RunOutcome::kDetectedHang ||
         outcome == RunOutcome::kDetectedTrap ||
         outcome == RunOutcome::kDetectedWildStore;
}

/// Per-class outcome counts for a campaign, with the signature-vs-symptom
/// coverage split.
struct OutcomeHistogram {
  std::array<std::size_t, kRunOutcomeCount> counts{};

  void add(RunOutcome outcome) {
    ++counts[static_cast<std::size_t>(outcome)];
  }
  std::size_t count(RunOutcome outcome) const {
    return counts[static_cast<std::size_t>(outcome)];
  }
  std::size_t total() const {
    std::size_t t = 0;
    for (std::size_t c : counts) t += c;
    return t;
  }
  std::size_t detected() const {
    return detected_by_signature() + detected_by_symptom();
  }
  /// Detections that require unloading + comparing signature words.
  std::size_t detected_by_signature() const {
    return count(RunOutcome::kDetectedMismatch);
  }
  /// Detections visible to the OS monitor alone (hang, trap, wild store).
  std::size_t detected_by_symptom() const {
    return count(RunOutcome::kDetectedHang) +
           count(RunOutcome::kDetectedTrap) +
           count(RunOutcome::kDetectedWildStore);
  }
  friend bool operator==(const OutcomeHistogram&,
                         const OutcomeHistogram&) = default;
};

/// Default watchdog budget factor (faulty runs get k × the good machine's
/// resources before being declared hung).
inline constexpr double kDefaultBudgetFactor = 8.0;

/// Hardened-runtime knobs for faulty-machine execution.
struct InjectOptions {
  /// Watchdog budget factor k. Unset = the session's SessionOptions::
  /// budget_factor (or kDefaultBudgetFactor in session-less forms). A value
  /// <= 0 disables the watchdog: the faulty run falls back to the legacy
  /// global 1<<24 instruction cap (a run that hits it still classifies as
  /// kDetectedHang).
  std::optional<double> budget_factor;
  /// Budget floors, so short programs are not starved by rounding.
  std::uint64_t min_instructions = 1u << 12;
  std::uint64_t min_cycles = 1u << 14;
  std::uint64_t min_stores = 64;
  /// Software-MPU store guard over the program image span (code + data +
  /// signature area). Off = wild stores land in simulated memory and
  /// classify as hang/trap/mismatch, like the legacy behaviour.
  bool store_guard = true;
  /// Campaign-level serial retries for a fault whose task threw
  /// (kInfraError). Retries are deterministic: they re-run the same fault
  /// with the same inputs, so a deterministic failure stays kInfraError.
  unsigned infra_retries = 1;
};

/// Maps a guarded run's stop verdict onto the outcome taxonomy — the single
/// classification rule shared by the injection campaign and the conformance
/// runner. `signatures_match` is consulted only for clean (kHalted)
/// endings; every budget exhaustion is kDetectedHang (a watchdog firing is
/// a detection, never an infrastructure error).
RunOutcome classify_stop(sim::StopReason stop, bool signatures_match);

/// Derives the per-run watchdog budget from the good machine's measured
/// resources: factor × good stats, clamped below by the InjectOptions
/// floors. factor <= 0 returns the legacy unlimited budget.
sim::RunBudget run_budget_for(const sim::ExecStats& good_stats, double factor,
                              const InjectOptions& options = {});

/// The software-MPU region set for `program`: its image span (code, data
/// and signature words all live inside [image.base, image.end_address())).
sim::StoreGuard store_guard_for(const struct TestProgram& program);

class GateLevelFaultInjector final : public sim::CpuHooks {
 public:
  /// Supported targets: kAlu, kShifter, kMultiplier (the components whose
  /// results flow through the CpuHooks override points).
  ///
  /// All four fault models inject through the same hooks; the model decides
  /// WHEN the gate-level force is armed:
  ///  * kStuckAt — armed for every operation (the legacy behaviour).
  ///  * kTransition — armed for an operation only when the fault-free value
  ///    of the faulted line transitions from the slow value on the previous
  ///    operation to its complement now (the launch/capture pair of the
  ///    gate-level grader, at operation granularity).
  ///  * kTransientSEU / kIntermittent — armed per operation by the fault's
  ///    deterministic activation stream (fault_active), indexed by the
  ///    injector's private operation counter — so outcomes depend only on
  ///    the program and the fault, never on scheduling.
  GateLevelFaultInjector(const ProcessorModel& model, CutId target,
                         const fault::Fault& fault);
  /// Session form: evaluates through the session's cached compiled netlist
  /// (event-driven — one faulty operation re-simulates only its cone).
  /// Results are bitwise-identical to the reference form.
  GateLevelFaultInjector(GradingSession& session, CutId target,
                         const fault::Fault& fault);
  /// Prefetched form for campaign workers: evaluates event-driven through a
  /// caller-held compiled netlist, so parallel per-fault tasks never touch
  /// the session caches. `nl` and `compiled` must describe the same
  /// component and outlive the injector.
  GateLevelFaultInjector(const netlist::Netlist& nl,
                         const netlist::CompiledNetlist& compiled,
                         CutId target, const fault::Fault& fault);

  std::optional<std::uint32_t> alu_result(rtlgen::AluOp, std::uint32_t,
                                          std::uint32_t) override;
  std::optional<std::uint32_t> shift_result(rtlgen::ShiftOp, std::uint32_t,
                                            std::uint32_t) override;
  std::optional<std::uint64_t> mult_result(std::uint32_t,
                                           std::uint32_t) override;

  /// Number of operations whose faulty result differed from the good one.
  std::uint64_t corrupted_results() const { return corrupted_; }

 private:
  void check_target(CutId target) const;
  void init_fault(const fault::Fault& fault);
  void drive(const char* port, std::uint64_t value);
  /// Arms / disarms the force for the operation about to be evaluated,
  /// per the fault model's activation semantics. Called once per hooked
  /// operation, before the faulty eval.
  void update_activation();
  std::uint64_t read(const char* port);

  CutId target_;
  const netlist::Netlist* nl_;
  std::unique_ptr<netlist::Evaluator> ref_eval_;
  std::unique_ptr<netlist::CompiledEvaluator> comp_eval_;
  fault::Fault fault_;
  std::uint64_t stream_key_ = 0;  // fault_stream_key(fault_)
  std::uint64_t op_index_ = 0;    // operations evaluated through the hooks
  bool active_ = false;           // force currently armed
  bool prev_line_sv_ = false;     // transition: previous op's line == sv
  netlist::NetId line_ = netlist::kNoNet;  // transition: the faulted line
  // Transition only: un-faulted reference evaluator for the line's
  // fault-free value (compiled evaluators cannot provide it — optimization
  // passes may fuse the line away).
  std::unique_ptr<netlist::Evaluator> line_eval_;
  std::uint64_t corrupted_ = 0;
};

/// Runs `image` twice — fault-free and with `fault` injected into `target`
/// — and reports whether any signature word differs, plus the classified
/// RunOutcome of the faulty execution.
struct InjectionOutcome {
  bool detected = false;
  RunOutcome outcome = RunOutcome::kOkMatch;
  /// Raw stop verdict of the guarded faulty run (which watchdog fired,
  /// etc.). kHalted for kOkMatch/kDetectedMismatch.
  sim::StopReason stop = sim::StopReason::kHalted;
  std::uint64_t corrupted_results = 0;
  /// Faulty-run resource stats, complete up to the stopping point even for
  /// traps and wild stores (detection-latency accounting).
  sim::ExecStats faulty_stats;
  std::vector<std::uint32_t> good_signatures;
  std::vector<std::uint32_t> faulty_signatures;
};

/// Tallies the outcome classes of a campaign result.
OutcomeHistogram histogram_of(const std::vector<InjectionOutcome>& outcomes);

InjectionOutcome run_with_injection(const ProcessorModel& model,
                                    const struct TestProgram& program,
                                    CutId target, const fault::Fault& fault,
                                    const sim::CpuConfig& config = {},
                                    const InjectOptions& inject = {});

/// Session form: amortizes the target's netlist compilation, the predecoded
/// program image and the fault-free reference run across many injection
/// calls (the good machine runs once per (program, config), not once per
/// fault). Identical outcomes to the model form.
InjectionOutcome run_with_injection(GradingSession& session,
                                    const struct TestProgram& program,
                                    CutId target, const fault::Fault& fault,
                                    const sim::CpuConfig& config = {},
                                    const InjectOptions& inject = {});

/// Multi-fault injection campaign: one fault-free reference run plus one
/// faulty run per fault, the faulty runs scheduled as independent tasks on
/// the session pool. Outcomes are returned in fault order and are
/// bitwise-identical to calling run_with_injection per fault, for any
/// thread count. A fault whose task throws is retried serially
/// (InjectOptions::infra_retries) and, if it keeps failing, marked
/// kInfraError — the rest of the campaign always completes.
std::vector<InjectionOutcome> run_injection_campaign(
    GradingSession& session, const struct TestProgram& program, CutId target,
    const std::vector<fault::Fault>& faults, const sim::CpuConfig& config = {},
    const InjectOptions& inject = {});

/// Session-less campaign: serial faulty runs, but still only ONE fault-free
/// reference run for the whole fault list. Same retry/infra_error policy as
/// the session form.
std::vector<InjectionOutcome> run_injection_campaign(
    const ProcessorModel& model, const struct TestProgram& program,
    CutId target, const std::vector<fault::Fault>& faults,
    const sim::CpuConfig& config = {}, const InjectOptions& inject = {});

}  // namespace sbst::core
