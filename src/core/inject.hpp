// Gate-level fault injection into program execution.
//
// Computes ALU / shifter / multiplier results through the component's
// *faulty* gate-level netlist during CPU simulation, so a stuck-at fault
// corrupts architectural state exactly as silicon would. Running the SBST
// program under injection and comparing the unloaded signature words
// against the fault-free run is the end-to-end detection check the whole
// methodology rests on (error identification via signatures, paper §3.3).
#pragma once

#include <memory>

#include "core/component.hpp"
#include "fault/fault.hpp"
#include "netlist/compiled.hpp"
#include "netlist/eval.hpp"
#include "sim/cpu.hpp"

namespace sbst::core {

class GradingSession;

class GateLevelFaultInjector final : public sim::CpuHooks {
 public:
  /// Supported targets: kAlu, kShifter, kMultiplier (the components whose
  /// results flow through the CpuHooks override points).
  GateLevelFaultInjector(const ProcessorModel& model, CutId target,
                         const fault::Fault& fault);
  /// Session form: evaluates through the session's cached compiled netlist
  /// (event-driven — one faulty operation re-simulates only its cone).
  /// Results are bitwise-identical to the reference form.
  GateLevelFaultInjector(GradingSession& session, CutId target,
                         const fault::Fault& fault);
  /// Prefetched form for campaign workers: evaluates event-driven through a
  /// caller-held compiled netlist, so parallel per-fault tasks never touch
  /// the session caches. `nl` and `compiled` must describe the same
  /// component and outlive the injector.
  GateLevelFaultInjector(const netlist::Netlist& nl,
                         const netlist::CompiledNetlist& compiled,
                         CutId target, const fault::Fault& fault);

  std::optional<std::uint32_t> alu_result(rtlgen::AluOp, std::uint32_t,
                                          std::uint32_t) override;
  std::optional<std::uint32_t> shift_result(rtlgen::ShiftOp, std::uint32_t,
                                            std::uint32_t) override;
  std::optional<std::uint64_t> mult_result(std::uint32_t,
                                           std::uint32_t) override;

  /// Number of operations whose faulty result differed from the good one.
  std::uint64_t corrupted_results() const { return corrupted_; }

 private:
  void check_target(CutId target) const;
  void drive(const char* port, std::uint64_t value);
  std::uint64_t read(const char* port);

  CutId target_;
  const netlist::Netlist* nl_;
  std::unique_ptr<netlist::Evaluator> ref_eval_;
  std::unique_ptr<netlist::CompiledEvaluator> comp_eval_;
  std::uint64_t corrupted_ = 0;
};

/// Runs `image` twice — fault-free and with `fault` injected into `target`
/// — and reports whether any signature word differs.
struct InjectionOutcome {
  bool detected = false;
  std::uint64_t corrupted_results = 0;
  std::vector<std::uint32_t> good_signatures;
  std::vector<std::uint32_t> faulty_signatures;
};

InjectionOutcome run_with_injection(const ProcessorModel& model,
                                    const struct TestProgram& program,
                                    CutId target, const fault::Fault& fault,
                                    const sim::CpuConfig& config = {});

/// Session form: amortizes the target's netlist compilation, the predecoded
/// program image and the fault-free reference run across many injection
/// calls (the good machine runs once per (program, config), not once per
/// fault). Identical outcomes to the model form.
InjectionOutcome run_with_injection(GradingSession& session,
                                    const struct TestProgram& program,
                                    CutId target, const fault::Fault& fault,
                                    const sim::CpuConfig& config = {});

/// Multi-fault injection campaign: one fault-free reference run plus one
/// faulty run per fault, the faulty runs scheduled as independent tasks on
/// the session pool. Outcomes are returned in fault order and are
/// bitwise-identical to calling run_with_injection per fault, for any
/// thread count.
std::vector<InjectionOutcome> run_injection_campaign(
    GradingSession& session, const struct TestProgram& program, CutId target,
    const std::vector<fault::Fault>& faults, const sim::CpuConfig& config = {});

/// Session-less campaign: serial faulty runs, but still only ONE fault-free
/// reference run for the whole fault list.
std::vector<InjectionOutcome> run_injection_campaign(
    const ProcessorModel& model, const struct TestProgram& program,
    CutId target, const std::vector<fault::Fault>& faults,
    const sim::CpuConfig& config = {});

}  // namespace sbst::core
