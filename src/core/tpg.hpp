// Test-pattern sources for the three TPG strategies (paper §3.3).
//
// The regular deterministic sets are the heart of the high-level strategy:
// constant- or linear-size operand families that exploit the inherent
// regularity of arithmetic/logic components, shifters, comparators, muxes
// and register files. They are *implementation-independent* — property
// tests verify they reach their coverage on both the ripple-carry and the
// carry-lookahead realisations.
//
// Each family is expressed as component *operations* (op + operands),
// because that is what a self-test routine can actually apply through
// instructions; helpers lower them onto netlist ports for fault grading.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/pattern.hpp"
#include "rtlgen/alu.hpp"
#include "rtlgen/memctrl.hpp"
#include "rtlgen/shifter.hpp"

namespace sbst::core {

// ---- regular deterministic operand families --------------------------------

struct AluOpnd {
  rtlgen::AluOp op;
  std::uint32_t a;
  std::uint32_t b;
};
/// Constant part (per-op truth-table + carry/borrow corners) plus linear
/// part (per-bit carry generate/propagate walks).
std::vector<AluOpnd> regular_alu_tests(unsigned width = 32);

struct ShiftOpnd {
  rtlgen::ShiftOp op;
  std::uint32_t value;
  std::uint8_t shamt;
};
/// Linear family: checkerboards + sign corner through every (op, shamt).
std::vector<ShiftOpnd> regular_shifter_tests(unsigned width = 32);

struct MulOpnd {
  std::uint32_t a;
  std::uint32_t b;
};
/// Linear family: walking-one rows/columns against all-ones plus
/// checkerboard/corner constants (array multiplier regularity).
std::vector<MulOpnd> regular_multiplier_tests(unsigned width = 32);

struct DivOpnd {
  std::uint32_t dividend;
  std::uint32_t divisor;
};
/// Linear family exercising the restoring datapath, the counter and the
/// quotient shift: walking divisors/dividends plus corners.
std::vector<DivOpnd> regular_divider_tests(unsigned width = 32);

struct RegFileOp {
  bool write;
  std::uint8_t addr;       // write target or read address (port 1)
  std::uint32_t data;      // write data
  std::uint8_t raddr2 = 0; // secondary read
};
/// Two patterns (checkerboard pair) per register, written and read back in
/// the paper's two-phase order (one half under test, the other compacting).
std::vector<RegFileOp> regular_regfile_tests(unsigned num_regs = 32);

struct MemOpnd {
  rtlgen::MemSize size;
  bool sign;
  bool write;
  std::uint8_t offset;    // within the test word(s)
  std::uint32_t data;     // store data or pre-loaded memory content
};
/// Byte/half/word store+load sweep across all lanes with checkerboard and
/// sign-corner data.
std::vector<MemOpnd> regular_memctrl_tests();

// ---- lowering onto netlist ports for fault grading -------------------------

fault::PatternSet alu_pattern_set(const netlist::Netlist& alu,
                                  const std::vector<AluOpnd>& tests);
fault::PatternSet shifter_pattern_set(const netlist::Netlist& shifter,
                                      const std::vector<ShiftOpnd>& tests);
fault::PatternSet multiplier_pattern_set(const netlist::Netlist& mul,
                                         const std::vector<MulOpnd>& tests);
fault::SeqStimulus divider_stimulus(const netlist::Netlist& divider,
                                    const std::vector<DivOpnd>& tests,
                                    unsigned width = 32);
fault::SeqStimulus regfile_stimulus(const netlist::Netlist& regfile,
                                    const std::vector<RegFileOp>& ops);
fault::SeqStimulus memctrl_stimulus(const netlist::Netlist& memctrl,
                                    const std::vector<MemOpnd>& tests);
/// The PVC functional test: every supported (opcode, funct).
fault::PatternSet control_pattern_set(const netlist::Netlist& control);

}  // namespace sbst::core
