#include "core/component.hpp"

#include <algorithm>
#include <stdexcept>

#include "rtlgen/alu.hpp"
#include "rtlgen/arith.hpp"
#include "rtlgen/control.hpp"
#include "rtlgen/divider.hpp"
#include "rtlgen/memctrl.hpp"
#include "rtlgen/multiplier.hpp"
#include "rtlgen/pipeline.hpp"
#include "rtlgen/regfile.hpp"
#include "rtlgen/shifter.hpp"

namespace sbst::core {

const char* class_name(ComponentClass cls) {
  switch (cls) {
    case ComponentClass::kDataVisible: return "D-VC";
    case ComponentClass::kAddressVisible: return "A-VC";
    case ComponentClass::kMixedVisible: return "M-VC";
    case ComponentClass::kPartiallyVisible: return "PVC";
    case ComponentClass::kHidden: return "HC";
  }
  return "?";
}

const char* class_description(ComponentClass cls) {
  switch (cls) {
    case ComponentClass::kDataVisible:
      return "data visible: operands via immediate/register/memory, results "
             "via register file or data memory";
    case ComponentClass::kAddressVisible:
      return "address visible: values depend on instruction/data placement; "
             "testing needs distributed memory references";
    case ComponentClass::kMixedVisible:
      return "mixed address/data visible";
    case ComponentClass::kPartiallyVisible:
      return "partially visible: control outputs steer visible components";
    case ComponentClass::kHidden:
      return "hidden: performance machinery invisible to the programmer";
  }
  return "?";
}

const char* strategy_name(TpgStrategy s) {
  switch (s) {
    case TpgStrategy::kAtpgDeterministic: return "AtpgD";
    case TpgStrategy::kPseudorandom: return "PR";
    case TpgStrategy::kRegularDeterministic: return "RegD";
    case TpgStrategy::kFunctionalTest: return "FT";
    case TpgStrategy::kNone: return "side-effect";
  }
  return "?";
}

ProcessorModel::ProcessorModel() {
  using rtlgen::AdderStyle;

  components_.push_back({
      .id = CutId::kMultiplier,
      .name = "Parallel Mul.",
      .cls = ComponentClass::kDataVisible,
      .default_strategy = TpgStrategy::kRegularDeterministic,
      .test_priority = 1,
      .periodic_suitable = true,
      .excite = "mult, multu",
      .control = "operands in registers via li",
      .observe = "mfhi/mflo -> registers -> MISR",
      .netlist = rtlgen::build_multiplier({.width = 32}),
  });
  components_.push_back({
      .id = CutId::kDivider,
      .name = "Serial Div.",
      .cls = ComponentClass::kDataVisible,
      .default_strategy = TpgStrategy::kRegularDeterministic,
      .test_priority = 1,
      .periodic_suitable = true,
      .excite = "div, divu",
      .control = "operands in registers via li",
      .observe = "mfhi/mflo -> registers -> MISR",
      .netlist = rtlgen::build_divider({.width = 32}),
  });
  components_.push_back({
      .id = CutId::kRegisterFile,
      .name = "Register File",
      .cls = ComponentClass::kDataVisible,
      .default_strategy = TpgStrategy::kRegularDeterministic,
      .test_priority = 2,
      .periodic_suitable = true,
      .excite = "every instruction (2 read ports, 1 write port)",
      .control = "li writes; two-phase halves to avoid data-memory stores",
      .observe = "reads feed the MISR registers in the opposite half",
      .netlist = rtlgen::build_regfile({.num_regs = 32, .width = 32}),
  });
  components_.push_back({
      .id = CutId::kMemCtrl,
      .name = "Memory controller",
      .cls = ComponentClass::kMixedVisible,
      .default_strategy = TpgStrategy::kRegularDeterministic,
      .test_priority = 3,
      .periodic_suitable = true,  // its D-VC share (MDR + data muxes)
      .excite = "lb/lbu/lh/lhu/lw, sb/sh/sw",
      .control = "store data via registers; addresses via base+offset",
      .observe = "loaded data -> registers -> MISR",
      .netlist = rtlgen::build_memctrl(),
  });
  components_.push_back({
      .id = CutId::kShifter,
      .name = "Shifter",
      .cls = ComponentClass::kDataVisible,
      .default_strategy = TpgStrategy::kAtpgDeterministic,
      .test_priority = 4,
      .periodic_suitable = true,
      .excite = "sll/srl/sra, sllv/srlv/srav",
      .control = "operand via li, shamt immediate or register",
      .observe = "result register -> MISR",
      .netlist = rtlgen::build_shifter({.width = 32}),
  });
  components_.push_back({
      .id = CutId::kAlu,
      .name = "ALU",
      .cls = ComponentClass::kDataVisible,
      .default_strategy = TpgStrategy::kRegularDeterministic,
      .test_priority = 5,
      .periodic_suitable = true,
      .excite = "add/addu/sub/subu/and/or/xor/nor/slt/sltu (+imm forms)",
      .control = "operands via li / immediate fields",
      .observe = "result register -> MISR",
      .netlist = rtlgen::build_alu({.width = 32,
                                    .adder = AdderStyle::kRippleCarry}),
  });
  components_.push_back({
      .id = CutId::kControl,
      .name = "Control Logic",
      .cls = ComponentClass::kPartiallyVisible,
      .default_strategy = TpgStrategy::kFunctionalTest,
      .test_priority = 6,
      .periodic_suitable = true,
      .excite = "every instruction opcode",
      .control = "opcode/funct fields of executed instructions",
      .observe = "side effects through the D-VCs",
      .netlist = rtlgen::build_control(),
  });
  components_.push_back({
      .id = CutId::kForwarding,
      .name = "Forwarding Unit",
      .cls = ComponentClass::kHidden,
      .default_strategy = TpgStrategy::kNone,
      .test_priority = 7,
      .periodic_suitable = false,
      .excite = "register-register dependences of any routine",
      .control = "implicit via instruction scheduling",
      .observe = "implicit via forwarded operands",
      .netlist = rtlgen::build_forwarding_unit(),
  });
  {
    // The PC-relative branch-target adder — the paper's example of an
    // M-VC (§3.2): one operand is an address (the PC), the other is data
    // (the sign-extended offset). It becomes visible only through
    // instruction placement, so like the A-VCs it is not targeted by the
    // periodic test and is graded from the branch side-effect stream.
    netlist::Netlist nl("branch_adder");
    const netlist::Bus pc = nl.input_bus("pc", 32);
    const netlist::Bus offset = nl.input_bus("offset", 32);
    const rtlgen::AdderResult sum = rtlgen::build_adder(
        nl, pc, offset, nl.constant(false), AdderStyle::kRippleCarry);
    nl.output_bus("target", sum.sum);
    components_.push_back({
        .id = CutId::kBranchAdder,
        .name = "Branch Adder",
        .cls = ComponentClass::kMixedVisible,
        .default_strategy = TpgStrategy::kNone,
        .test_priority = 7,
        .periodic_suitable = false,
        .excite = "beq/bne target computation",
        .control = "instruction placement (PC) + branch offset field",
        .observe = "taken-branch fetch address",
        .netlist = std::move(nl),
    });
  }
  components_.push_back({
      .id = CutId::kPipeline,
      .name = "Pipeline Regs",
      .cls = ComponentClass::kHidden,
      .default_strategy = TpgStrategy::kNone,
      .test_priority = 7,
      .periodic_suitable = false,
      .excite = "every instruction (data fields are D-VC-tested)",
      .control = "implicit",
      .observe = "implicit",
      .netlist = rtlgen::build_pipe_reg({.width = 32}),
  });
}

const ComponentInfo& ProcessorModel::component(CutId id) const {
  for (const ComponentInfo& c : components_) {
    if (c.id == id) return c;
  }
  throw std::out_of_range("ProcessorModel: unknown component");
}

double ProcessorModel::total_gate_equivalents() const {
  double total = 0;
  for (const ComponentInfo& c : components_) total += c.gate_equivalents();
  return total;
}

double ProcessorModel::class_area_fraction(ComponentClass cls) const {
  double total = 0, share = 0;
  for (const ComponentInfo& c : components_) {
    const double ge = c.gate_equivalents();
    total += ge;
    // The memory controller is mixed: the paper apportions 73% of it to
    // D-VC, 23% to A-VC (the MAR) and 4% to PVC.
    if (c.id == CutId::kMemCtrl) {
      if (cls == ComponentClass::kDataVisible) share += 0.73 * ge;
      if (cls == ComponentClass::kAddressVisible) share += 0.23 * ge;
      if (cls == ComponentClass::kPartiallyVisible) share += 0.04 * ge;
      continue;
    }
    if (c.cls == cls) share += ge;
  }
  return total == 0 ? 0 : share / total;
}

std::vector<const ComponentInfo*> ProcessorModel::by_priority() const {
  std::vector<const ComponentInfo*> out;
  for (const ComponentInfo& c : components_) out.push_back(&c);
  std::stable_sort(out.begin(), out.end(),
                   [](const ComponentInfo* a, const ComponentInfo* b) {
                     return a->test_priority < b->test_priority;
                   });
  return out;
}

}  // namespace sbst::core
