// Fault-simulation engine selection and shared per-run engine artifacts.
//
// Every simulator in sim.hpp / sim_parallel.hpp grades the same contract
// with one of three interchangeable evaluation engines; detection flags are
// bitwise-identical across engines for any netlist, stimulus, observe set,
// thread count, and lane packing:
//
//  * kReference: the original Evaluator — full topo-order re-evaluation per
//    eval(), hash-map pin forces. The oracle the fast engines are
//    cross-checked against.
//  * kCompiled:  CompiledEvaluator with event-driving disabled — one
//    contiguous levelized SoA sweep per eval(), dense force arrays. Isolates
//    the win from compilation alone.
//  * kEvent:     CompiledEvaluator in event-driven mode — after the
//    good-machine pass each injected fault re-simulates only its fanout
//    cone, and faults whose cone cannot reach the observe set are skipped
//    up front. The production default.
//
// EngineContext bundles the engine's immutable per-run artifacts — the
// compiled program and the observe-cone reach prefilter — built once and
// shared read-only by every worker. A caller that already holds them (e.g.
// a core::GradingSession cache) lends them in instead, so repeated gradings
// of the same netlist pay for compilation and cone marking exactly once.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netlist/compiled.hpp"
#include "netlist/eval.hpp"
#include "store/artifact_store.hpp"

namespace sbst::fault {

/// Canonical persistent-store key for a compiled netlist: content hash of
/// the netlist plus the compile options and lane width. Shared by
/// EngineContext and core::GradingSession so a store warmed through either
/// layer serves the other.
store::ArtifactKey compiled_store_key(const netlist::Netlist& nl,
                                      const netlist::CompileOptions& opts,
                                      unsigned lanes);

enum class Engine : std::uint8_t {
  kReference,
  kCompiled,
  kEvent,
};

/// "reference", "compiled", or "event".
const char* engine_name(Engine engine);

/// Parses an engine name; returns false (and leaves `out` untouched) on an
/// unknown name.
bool parse_engine(const std::string& name, Engine& out);

/// Engine used when none is requested explicitly: the SBST_ENGINE
/// environment variable if it names one, else kEvent.
Engine default_engine();

/// Lane-block width in 64-bit words when none is requested explicitly: the
/// SBST_LANES environment variable if it parses to a supported width
/// (1 or 4), else 4. One event-driven pass lane-packs 64*width - 1 faults.
/// The reference engine always runs single-word and ignores this.
unsigned default_lanes();

/// Parses a lane width ("1" or "4"); returns false on anything else.
bool parse_lanes(const std::string& text, unsigned& out);

/// Whether the compiled engines run the netlist-compile optimization passes
/// (constant propagation, inverter fusion, dead-gate sweep) when nothing is
/// requested explicitly: SBST_NETLIST_OPT=0 disables, else enabled.
bool default_netlist_opt();

/// Immutable per-run grading artifacts for one (engine, netlist, observe
/// set) triple: the resolved observe set, the compiled program (for the
/// compiled engines), and the observe-cone reach prefilter. Construction
/// also warms the netlist's cached topological order so worker threads only
/// ever read it. Thread-safe to share by const reference; each worker
/// builds its own evaluator via grade_with_evaluator().
class EngineContext {
 public:
  /// Builds the artifacts for grading `nl` observed at `observe` (empty =
  /// all declared outputs). When the caller already owns a matching
  /// `compiled` netlist and/or `reach` prefilter (they must correspond to
  /// `nl` and `observe`), they are borrowed instead of rebuilt and must
  /// outlive this context. `lanes` is the lane-block width in words (0 =
  /// default_lanes(); values other than 4 run single-word). `netlist_opt`
  /// selects the compile-time optimization passes when this context builds
  /// its own compiled netlist; a borrowed `compiled` keeps whatever options
  /// it was built with. When `store` is set and this context compiles its
  /// own netlist, the persistent artifact store is probed first (keyed by
  /// netlist content hash + options + lane width) and written back after a
  /// from-scratch compile — results are identical either way.
  EngineContext(Engine engine, const netlist::Netlist& nl,
                std::vector<netlist::NetId> observe,
                const netlist::CompiledNetlist* compiled = nullptr,
                const std::uint8_t* reach = nullptr, unsigned lanes = 0,
                int netlist_opt = -1, store::ArtifactStore* store = nullptr);

  Engine engine() const { return engine_; }
  /// Resolved lane-block width in words (1 for the reference engine).
  unsigned lanes() const { return lanes_; }
  const netlist::Netlist& netlist() const { return *nl_; }
  const std::vector<netlist::NetId>& observe() const { return observe_; }
  /// Per-gate observe-cone membership, or nullptr for the reference engine
  /// (which runs unfiltered, as the oracle).
  const std::uint8_t* reach() const { return reach_; }
  /// Compiled program, or nullptr for the reference engine.
  const netlist::CompiledNetlist* compiled() const { return compiled_; }

  /// Calls grade(ev) on a freshly built evaluator for this engine at the
  /// resolved lane width. The grading templates in sim_detail.hpp are
  /// lane-generic (Ev::kWords), so each width instantiates its own inner
  /// loops.
  template <typename GradeFn>
  void grade_with_evaluator(const GradeFn& grade) const {
    if (engine_ == Engine::kReference) {
      netlist::Evaluator ev(*nl_);
      grade(ev);
    } else if (lanes_ == 4) {
      netlist::CompiledEvaluatorT<4> ev(
          *compiled_, /*event_driven=*/engine_ == Engine::kEvent);
      grade(ev);
    } else {
      netlist::CompiledEvaluatorT<1> ev(
          *compiled_, /*event_driven=*/engine_ == Engine::kEvent);
      grade(ev);
    }
  }

 private:
  Engine engine_;
  unsigned lanes_;
  const netlist::Netlist* nl_;
  std::vector<netlist::NetId> observe_;
  std::unique_ptr<netlist::CompiledNetlist> owned_compiled_;
  std::vector<std::uint8_t> reach_store_;
  const netlist::CompiledNetlist* compiled_ = nullptr;
  const std::uint8_t* reach_ = nullptr;
};

}  // namespace sbst::fault
