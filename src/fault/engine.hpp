// Fault-simulation engine selection.
//
// Every simulator in sim.hpp / sim_parallel.hpp grades the same contract
// with one of three interchangeable evaluation engines; detection flags are
// bitwise-identical across engines for any netlist, stimulus, observe set,
// thread count, and lane packing:
//
//  * kReference: the original Evaluator — full topo-order re-evaluation per
//    eval(), hash-map pin forces. The oracle the fast engines are
//    cross-checked against.
//  * kCompiled:  CompiledEvaluator with event-driving disabled — one
//    contiguous levelized SoA sweep per eval(), dense force arrays. Isolates
//    the win from compilation alone.
//  * kEvent:     CompiledEvaluator in event-driven mode — after the
//    good-machine pass each injected fault re-simulates only its fanout
//    cone, and faults whose cone cannot reach the observe set are skipped
//    up front. The production default.
#pragma once

#include <cstdint>
#include <string>

namespace sbst::fault {

enum class Engine : std::uint8_t {
  kReference,
  kCompiled,
  kEvent,
};

/// "reference", "compiled", or "event".
const char* engine_name(Engine engine);

/// Parses an engine name; returns false (and leaves `out` untouched) on an
/// unknown name.
bool parse_engine(const std::string& name, Engine& out);

/// Engine used when none is requested explicitly: the SBST_ENGINE
/// environment variable if it names one, else kEvent.
Engine default_engine();

}  // namespace sbst::fault
