#include "fault/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace sbst::fault {

unsigned resolve_thread_count(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SBST_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  const unsigned extra = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(extra);
  for (unsigned w = 0; w < extra; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_static(std::size_t count,
                            const std::function<void(std::size_t)>& fn) {
  std::vector<TaskFailure> failures = run_static_capture(count, fn);
  if (!failures.empty()) std::rethrow_exception(failures.front().error);
}

std::vector<ThreadPool::TaskFailure> ThreadPool::run_static_capture(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return {};
  failures_.clear();
  if (workers_.empty()) {
    task_count_ = count;
    task_fn_ = &fn;
    run_stride(0);
    task_fn_ = nullptr;
  } else {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      task_count_ = count;
      task_fn_ = &fn;
      pending_workers_ = static_cast<unsigned>(workers_.size());
      ++generation_;
    }
    start_cv_.notify_all();
    run_stride(0);  // the caller is worker 0
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_workers_ == 0; });
    task_fn_ = nullptr;
  }
  std::sort(failures_.begin(), failures_.end(),
            [](const TaskFailure& a, const TaskFailure& b) {
              return a.task < b.task;
            });
  return std::move(failures_);
}

void ThreadPool::worker_loop(unsigned worker_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
    }
    run_stride(worker_index);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_workers_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::run_stride(unsigned worker_index) {
  const unsigned stride = size();
  for (std::size_t task = worker_index; task < task_count_; task += stride) {
    try {
      (*task_fn_)(task);
    } catch (...) {
      // Contain the failure to this task: record it and keep draining the
      // stride, so the batch always completes and the pool stays usable.
      std::lock_guard<std::mutex> lock(failure_mutex_);
      failures_.push_back({task, std::current_exception()});
    }
  }
}

}  // namespace sbst::fault
