#include "fault/fault.hpp"

#include <cctype>
#include <numeric>
#include <stdexcept>

namespace sbst::fault {

using netlist::Gate;
using netlist::GateKind;
using netlist::Netlist;
using netlist::NetId;
using netlist::Site;

const char* fault_model_name(FaultModel model) {
  switch (model) {
    case FaultModel::kStuckAt: return "stuck-at";
    case FaultModel::kTransition: return "transition";
    case FaultModel::kTransientSEU: return "transient";
    case FaultModel::kIntermittent: return "intermittent";
  }
  return "unknown";
}

bool parse_fault_model(const std::string& name, FaultModel& out) {
  if (name == "stuck-at" || name == "stuck" || name == "sa") {
    out = FaultModel::kStuckAt;
  } else if (name == "transition") {
    out = FaultModel::kTransition;
  } else if (name == "transient" || name == "seu") {
    out = FaultModel::kTransientSEU;
  } else if (name == "intermittent") {
    out = FaultModel::kIntermittent;
  } else {
    return false;
  }
  return true;
}

namespace {

// Per-model name suffixes, indexed [model][stuck_value]. kTransition's
// stuck_value is the captured value, so 0 renders as slow-to-rise.
constexpr const char* kSuffix[kFaultModels][2] = {
    {"/sa0", "/sa1"},
    {"/STR", "/STF"},
    {"/seu0", "/seu1"},
    {"/int0", "/int1"},
};

}  // namespace

std::string fault_name(const Netlist& nl, const Fault& f) {
  std::string s = "g" + std::to_string(f.site.gate) + "(" +
                  kind_name(nl.gate(f.site.gate).kind) + ").";
  s += f.site.is_output() ? "out" : "in" + std::to_string(f.site.pin);
  s += kSuffix[static_cast<std::size_t>(f.model)][f.stuck_value ? 1 : 0];
  return s;
}

bool parse_fault_name(const Netlist& nl, const std::string& name,
                      Fault& out) {
  std::size_t i = 0;
  auto eat = [&](char c) {
    if (i >= name.size() || name[i] != c) return false;
    ++i;
    return true;
  };
  auto digits = [&](std::uint64_t& v) {
    if (i >= name.size() || !std::isdigit(static_cast<unsigned char>(name[i])))
      return false;
    v = 0;
    while (i < name.size() &&
           std::isdigit(static_cast<unsigned char>(name[i]))) {
      v = v * 10 + static_cast<std::uint64_t>(name[i] - '0');
      if (v > 0xffffffffull) return false;
      ++i;
    }
    return true;
  };

  Fault f;
  std::uint64_t gate = 0;
  if (!eat('g') || !digits(gate) || gate >= nl.size()) return false;
  f.site.gate = static_cast<NetId>(gate);
  // "(<kind>)": validated against the netlist, not trusted.
  if (!eat('(')) return false;
  const std::size_t kind_begin = i;
  while (i < name.size() && name[i] != ')') ++i;
  if (i >= name.size()) return false;
  if (name.substr(kind_begin, i - kind_begin) !=
      kind_name(nl.gate(f.site.gate).kind)) {
    return false;
  }
  ++i;  // ')'
  if (!eat('.')) return false;
  if (name.compare(i, 3, "out") == 0) {
    f.site.pin = Site::kOutputPin;
    i += 3;
  } else if (name.compare(i, 2, "in") == 0) {
    i += 2;
    std::uint64_t pin = 0;
    if (!digits(pin) || pin >= fanin_count(nl.gate(f.site.gate).kind)) {
      return false;
    }
    f.site.pin = static_cast<std::uint8_t>(pin);
  } else {
    return false;
  }
  const std::string suffix = name.substr(i);
  for (std::size_t m = 0; m < kFaultModels; ++m) {
    for (unsigned sv = 0; sv < 2; ++sv) {
      if (suffix == kSuffix[m][sv]) {
        f.model = static_cast<FaultModel>(m);
        f.stuck_value = sv != 0;
        out = f;
        return true;
      }
    }
  }
  return false;
}

std::uint64_t fault_stream_key(const Fault& f) {
  // Unique packing: gate in the high bits, pin (0xff for stems) below,
  // polarity and model in the low nibble.
  std::uint64_t s = (std::uint64_t{f.site.gate} << 12) |
                    (std::uint64_t{f.site.pin} << 4) |
                    (std::uint64_t{f.stuck_value ? 1u : 0u} << 3) |
                    static_cast<std::uint64_t>(f.model);
  return splitmix64(s);
}

namespace {

/// Hash of (stream key, window index): one golden-ratio splitmix64 draw per
/// window, so streams are random-access — any engine can ask about any
/// window without replaying the ones before it.
std::uint64_t activation_hash(std::uint64_t key, std::uint64_t index) {
  std::uint64_t s = key ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  return splitmix64(s);
}

}  // namespace

bool fault_active(std::uint64_t key, FaultModel model, std::uint64_t t) {
  switch (model) {
    case FaultModel::kTransientSEU:
      return t % kSeuWindow ==
             activation_hash(key, t / kSeuWindow) % kSeuWindow;
    case FaultModel::kIntermittent:
      return activation_hash(key, t / kIntermittentBurst) %
                 kIntermittentPeriod ==
             0;
    default:
      return true;
  }
}

std::uint64_t fault_active_word(std::uint64_t key, FaultModel model,
                                std::uint64_t block) {
  switch (model) {
    case FaultModel::kTransientSEU: {
      std::uint64_t word = 0;
      for (unsigned i = 0; i < 64 / kSeuWindow; ++i) {
        const std::uint64_t win = block * (64 / kSeuWindow) + i;
        word |= std::uint64_t{1}
                << (i * kSeuWindow + activation_hash(key, win) % kSeuWindow);
      }
      return word;
    }
    case FaultModel::kIntermittent: {
      constexpr std::uint64_t kBurstMask =
          ~std::uint64_t{0} >> (64 - kIntermittentBurst);
      std::uint64_t word = 0;
      for (unsigned i = 0; i < 64 / kIntermittentBurst; ++i) {
        const std::uint64_t burst = block * (64 / kIntermittentBurst) + i;
        if (activation_hash(key, burst) % kIntermittentPeriod == 0) {
          word |= kBurstMask << (i * kIntermittentBurst);
        }
      }
      return word;
    }
    default:
      return ~std::uint64_t{0};
  }
}

namespace {

// Union-find over fault ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

FaultUniverse::FaultUniverse(const Netlist& nl, FaultModel model)
    : nl_(&nl), model_(model) {
  // Enumerate: id = (gate * (max_pins+1) + pin_slot) * 2 + stuck_value,
  // where pin_slot 0 = output, 1..3 = input pins.
  constexpr unsigned kSlots = 4;
  const std::size_t n_gates = nl.size();
  const std::size_t n_ids = n_gates * kSlots * 2;
  auto fault_id = [](NetId g, unsigned slot, bool sv) {
    return (static_cast<std::size_t>(g) * kSlots + slot) * 2 + (sv ? 1 : 0);
  };

  std::vector<std::uint8_t> exists(n_ids, 0);
  for (NetId g = 0; g < n_gates; ++g) {
    const Gate& gate = nl.gate(g);
    // Output faults. Constants only get the opposite-polarity fault (a
    // stuck-at equal to the constant's value is undetectable by definition).
    switch (gate.kind) {
      case GateKind::kConst0:
        exists[fault_id(g, 0, true)] = 1;
        break;
      case GateKind::kConst1:
        exists[fault_id(g, 0, false)] = 1;
        break;
      default:
        exists[fault_id(g, 0, false)] = 1;
        exists[fault_id(g, 0, true)] = 1;
    }
    const unsigned n_pins = fanin_count(gate.kind);
    for (unsigned p = 0; p < n_pins; ++p) {
      exists[fault_id(g, p + 1, false)] = 1;
      exists[fault_id(g, p + 1, true)] = 1;
    }
  }

  UnionFind uf(n_ids);
  const std::vector<std::uint32_t> fanout = nl.fanout_counts();

  for (NetId g = 0; g < n_gates; ++g) {
    const Gate& gate = nl.gate(g);
    const unsigned n_pins = fanin_count(gate.kind);

    // Branch/stem equivalence on single-fanout nets: a pin fault on the only
    // sink of a net is indistinguishable from the stem fault.
    for (unsigned p = 0; p < n_pins; ++p) {
      const NetId src = gate.in[p];
      if (src != netlist::kNoNet && fanout[src] == 1) {
        for (bool sv : {false, true}) {
          if (exists[fault_id(src, 0, sv)]) {
            uf.unite(fault_id(g, p + 1, sv), fault_id(src, 0, sv));
          }
        }
      }
    }

    // Gate-local equivalences.
    switch (gate.kind) {
      case GateKind::kAnd:
        for (unsigned p = 0; p < 2; ++p) {
          uf.unite(fault_id(g, p + 1, false), fault_id(g, 0, false));
        }
        break;
      case GateKind::kNand:
        for (unsigned p = 0; p < 2; ++p) {
          uf.unite(fault_id(g, p + 1, false), fault_id(g, 0, true));
        }
        break;
      case GateKind::kOr:
        for (unsigned p = 0; p < 2; ++p) {
          uf.unite(fault_id(g, p + 1, true), fault_id(g, 0, true));
        }
        break;
      case GateKind::kNor:
        for (unsigned p = 0; p < 2; ++p) {
          uf.unite(fault_id(g, p + 1, true), fault_id(g, 0, false));
        }
        break;
      case GateKind::kBuf:
        uf.unite(fault_id(g, 1, false), fault_id(g, 0, false));
        uf.unite(fault_id(g, 1, true), fault_id(g, 0, true));
        break;
      case GateKind::kNot:
        uf.unite(fault_id(g, 1, false), fault_id(g, 0, true));
        uf.unite(fault_id(g, 1, true), fault_id(g, 0, false));
        break;
      default:
        break;  // XOR/XNOR/MUX2/DFF: no gate-local equivalence
    }
  }

  // Pick one representative per class. Prefer output (stem) sites as
  // representatives because they are cheapest to inject.
  std::vector<std::size_t> class_rep(n_ids, n_ids);
  std::vector<std::size_t> rep_index(n_ids, n_ids);
  auto decode = [&](std::size_t id) {
    Fault f;
    f.stuck_value = id & 1;
    f.model = model_;
    const std::size_t rest = id >> 1;
    f.site.gate = static_cast<NetId>(rest / kSlots);
    const unsigned slot = rest % kSlots;
    f.site.pin = slot == 0 ? Site::kOutputPin
                           : static_cast<std::uint8_t>(slot - 1);
    return f;
  };

  for (std::size_t id = 0; id < n_ids; ++id) {
    if (!exists[id]) continue;
    ++uncollapsed_count_;
    const std::size_t root = uf.find(id);
    if (class_rep[root] == n_ids ||
        ((id >> 1) % kSlots == 0 && (class_rep[root] >> 1) % kSlots != 0)) {
      class_rep[root] = id;
    }
  }
  for (std::size_t id = 0; id < n_ids; ++id) {
    if (!exists[id]) continue;
    const std::size_t root = uf.find(id);
    if (rep_index[root] == n_ids) {
      rep_index[root] = representatives_.size();
      representatives_.push_back(decode(class_rep[root]));
    }
  }
}

void FaultUniverse::serialize(common::ByteWriter& w) const {
  w.put_u32(kSerialVersion);
  // The universe is homogeneous, so the model is a header byte rather than
  // a per-fault field (v2 layout; v1 had no model and reads as invalid).
  w.put_u8(static_cast<std::uint8_t>(model_));
  w.put_u64(uncollapsed_count_);
  w.put_u64(representatives_.size());
  for (const Fault& f : representatives_) {
    w.put_u32(f.site.gate);
    w.put_u8(f.site.pin);
    w.put_bool(f.stuck_value);
  }
}

std::unique_ptr<FaultUniverse> FaultUniverse::deserialize(
    const Netlist& nl, common::ByteReader& r) {
  if (r.get_u32() != kSerialVersion) return nullptr;
  const std::uint8_t model_byte = r.get_u8();
  if (model_byte >= kFaultModels) return nullptr;
  auto u = std::unique_ptr<FaultUniverse>(
      new FaultUniverse(nl, DeserializeTag{}));
  u->model_ = static_cast<FaultModel>(model_byte);
  u->uncollapsed_count_ = static_cast<std::size_t>(r.get_u64());
  const std::size_t count = r.get_count(6);
  u->representatives_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Fault f;
    f.site.gate = r.get_u32();
    f.site.pin = r.get_u8();
    f.stuck_value = r.get_bool();
    f.model = u->model_;
    u->representatives_.push_back(f);
  }
  if (!r.ok()) return nullptr;
  // Sites must name real injection points of this netlist: a gate in range
  // and a pin that is the output or an existing input slot.
  for (const Fault& f : u->representatives_) {
    if (f.site.gate >= nl.size()) return nullptr;
    if (!f.site.is_output() &&
        f.site.pin >= fanin_count(nl.gate(f.site.gate).kind)) {
      return nullptr;
    }
  }
  return u;
}

void CoverageResult::recount() {
  detected = 0;
  for (auto flag : detected_flags) detected += flag ? 1 : 0;
}

void CoverageResult::merge(const CoverageResult& other) {
  if (detected_flags.size() != other.detected_flags.size()) {
    throw std::invalid_argument("CoverageResult::merge: size mismatch");
  }
  for (std::size_t i = 0; i < detected_flags.size(); ++i) {
    detected_flags[i] = detected_flags[i] || other.detected_flags[i];
  }
  recount();
}

std::vector<Fault> CoverageResult::undetected(
    const std::vector<Fault>& faults) const {
  std::vector<Fault> out;
  for (std::size_t i = 0; i < faults.size() && i < detected_flags.size();
       ++i) {
    if (!detected_flags[i]) out.push_back(faults[i]);
  }
  return out;
}

std::array<ModelCoverage, kFaultModels> split_by_model(
    const std::vector<Fault>& faults, const CoverageResult& result) {
  std::array<ModelCoverage, kFaultModels> out{};
  for (std::size_t i = 0;
       i < faults.size() && i < result.detected_flags.size(); ++i) {
    ModelCoverage& mc = out[static_cast<std::size_t>(faults[i].model)];
    ++mc.total;
    if (result.detected_flags[i]) ++mc.detected;
  }
  return out;
}

}  // namespace sbst::fault

