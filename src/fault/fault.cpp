#include "fault/fault.hpp"

#include <numeric>
#include <stdexcept>

namespace sbst::fault {

using netlist::Gate;
using netlist::GateKind;
using netlist::Netlist;
using netlist::NetId;
using netlist::Site;

std::string fault_name(const Netlist& nl, const Fault& f) {
  std::string s = "g" + std::to_string(f.site.gate) + "(" +
                  kind_name(nl.gate(f.site.gate).kind) + ").";
  s += f.site.is_output() ? "out" : "in" + std::to_string(f.site.pin);
  s += f.stuck_value ? "/sa1" : "/sa0";
  return s;
}

namespace {

// Union-find over fault ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

FaultUniverse::FaultUniverse(const Netlist& nl) : nl_(&nl) {
  // Enumerate: id = (gate * (max_pins+1) + pin_slot) * 2 + stuck_value,
  // where pin_slot 0 = output, 1..3 = input pins.
  constexpr unsigned kSlots = 4;
  const std::size_t n_gates = nl.size();
  const std::size_t n_ids = n_gates * kSlots * 2;
  auto fault_id = [](NetId g, unsigned slot, bool sv) {
    return (static_cast<std::size_t>(g) * kSlots + slot) * 2 + (sv ? 1 : 0);
  };

  std::vector<std::uint8_t> exists(n_ids, 0);
  for (NetId g = 0; g < n_gates; ++g) {
    const Gate& gate = nl.gate(g);
    // Output faults. Constants only get the opposite-polarity fault (a
    // stuck-at equal to the constant's value is undetectable by definition).
    switch (gate.kind) {
      case GateKind::kConst0:
        exists[fault_id(g, 0, true)] = 1;
        break;
      case GateKind::kConst1:
        exists[fault_id(g, 0, false)] = 1;
        break;
      default:
        exists[fault_id(g, 0, false)] = 1;
        exists[fault_id(g, 0, true)] = 1;
    }
    const unsigned n_pins = fanin_count(gate.kind);
    for (unsigned p = 0; p < n_pins; ++p) {
      exists[fault_id(g, p + 1, false)] = 1;
      exists[fault_id(g, p + 1, true)] = 1;
    }
  }

  UnionFind uf(n_ids);
  const std::vector<std::uint32_t> fanout = nl.fanout_counts();

  for (NetId g = 0; g < n_gates; ++g) {
    const Gate& gate = nl.gate(g);
    const unsigned n_pins = fanin_count(gate.kind);

    // Branch/stem equivalence on single-fanout nets: a pin fault on the only
    // sink of a net is indistinguishable from the stem fault.
    for (unsigned p = 0; p < n_pins; ++p) {
      const NetId src = gate.in[p];
      if (src != netlist::kNoNet && fanout[src] == 1) {
        for (bool sv : {false, true}) {
          if (exists[fault_id(src, 0, sv)]) {
            uf.unite(fault_id(g, p + 1, sv), fault_id(src, 0, sv));
          }
        }
      }
    }

    // Gate-local equivalences.
    switch (gate.kind) {
      case GateKind::kAnd:
        for (unsigned p = 0; p < 2; ++p) {
          uf.unite(fault_id(g, p + 1, false), fault_id(g, 0, false));
        }
        break;
      case GateKind::kNand:
        for (unsigned p = 0; p < 2; ++p) {
          uf.unite(fault_id(g, p + 1, false), fault_id(g, 0, true));
        }
        break;
      case GateKind::kOr:
        for (unsigned p = 0; p < 2; ++p) {
          uf.unite(fault_id(g, p + 1, true), fault_id(g, 0, true));
        }
        break;
      case GateKind::kNor:
        for (unsigned p = 0; p < 2; ++p) {
          uf.unite(fault_id(g, p + 1, true), fault_id(g, 0, false));
        }
        break;
      case GateKind::kBuf:
        uf.unite(fault_id(g, 1, false), fault_id(g, 0, false));
        uf.unite(fault_id(g, 1, true), fault_id(g, 0, true));
        break;
      case GateKind::kNot:
        uf.unite(fault_id(g, 1, false), fault_id(g, 0, true));
        uf.unite(fault_id(g, 1, true), fault_id(g, 0, false));
        break;
      default:
        break;  // XOR/XNOR/MUX2/DFF: no gate-local equivalence
    }
  }

  // Pick one representative per class. Prefer output (stem) sites as
  // representatives because they are cheapest to inject.
  std::vector<std::size_t> class_rep(n_ids, n_ids);
  std::vector<std::size_t> rep_index(n_ids, n_ids);
  auto decode = [&](std::size_t id) {
    Fault f;
    f.stuck_value = id & 1;
    const std::size_t rest = id >> 1;
    f.site.gate = static_cast<NetId>(rest / kSlots);
    const unsigned slot = rest % kSlots;
    f.site.pin = slot == 0 ? Site::kOutputPin
                           : static_cast<std::uint8_t>(slot - 1);
    return f;
  };

  for (std::size_t id = 0; id < n_ids; ++id) {
    if (!exists[id]) continue;
    ++uncollapsed_count_;
    const std::size_t root = uf.find(id);
    if (class_rep[root] == n_ids ||
        ((id >> 1) % kSlots == 0 && (class_rep[root] >> 1) % kSlots != 0)) {
      class_rep[root] = id;
    }
  }
  for (std::size_t id = 0; id < n_ids; ++id) {
    if (!exists[id]) continue;
    const std::size_t root = uf.find(id);
    if (rep_index[root] == n_ids) {
      rep_index[root] = representatives_.size();
      representatives_.push_back(decode(class_rep[root]));
    }
  }
}

void FaultUniverse::serialize(common::ByteWriter& w) const {
  w.put_u32(kSerialVersion);
  w.put_u64(uncollapsed_count_);
  w.put_u64(representatives_.size());
  for (const Fault& f : representatives_) {
    w.put_u32(f.site.gate);
    w.put_u8(f.site.pin);
    w.put_bool(f.stuck_value);
  }
}

std::unique_ptr<FaultUniverse> FaultUniverse::deserialize(
    const Netlist& nl, common::ByteReader& r) {
  if (r.get_u32() != kSerialVersion) return nullptr;
  auto u = std::unique_ptr<FaultUniverse>(
      new FaultUniverse(nl, DeserializeTag{}));
  u->uncollapsed_count_ = static_cast<std::size_t>(r.get_u64());
  const std::size_t count = r.get_count(6);
  u->representatives_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Fault f;
    f.site.gate = r.get_u32();
    f.site.pin = r.get_u8();
    f.stuck_value = r.get_bool();
    u->representatives_.push_back(f);
  }
  if (!r.ok()) return nullptr;
  // Sites must name real injection points of this netlist: a gate in range
  // and a pin that is the output or an existing input slot.
  for (const Fault& f : u->representatives_) {
    if (f.site.gate >= nl.size()) return nullptr;
    if (!f.site.is_output() &&
        f.site.pin >= fanin_count(nl.gate(f.site.gate).kind)) {
      return nullptr;
    }
  }
  return u;
}

void CoverageResult::recount() {
  detected = 0;
  for (auto flag : detected_flags) detected += flag ? 1 : 0;
}

void CoverageResult::merge(const CoverageResult& other) {
  if (detected_flags.size() != other.detected_flags.size()) {
    throw std::invalid_argument("CoverageResult::merge: size mismatch");
  }
  for (std::size_t i = 0; i < detected_flags.size(); ++i) {
    detected_flags[i] = detected_flags[i] || other.detected_flags[i];
  }
  recount();
}

std::vector<Fault> CoverageResult::undetected(
    const std::vector<Fault>& faults) const {
  std::vector<Fault> out;
  for (std::size_t i = 0; i < faults.size() && i < detected_flags.size();
       ++i) {
    if (!detected_flags[i]) out.push_back(faults[i]);
  }
  return out;
}

}  // namespace sbst::fault
