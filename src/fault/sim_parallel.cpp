#include "fault/sim_parallel.hpp"

#include <algorithm>
#include <optional>

#include "common/bits.hpp"
#include "fault/sim_detail.hpp"
#include "netlist/compiled.hpp"

namespace sbst::fault {

using netlist::CompiledEvaluator;
using netlist::CompiledNetlist;
using netlist::Evaluator;
using netlist::NetId;
using netlist::Netlist;

namespace {

// Faults per fault-partitioned task. A multiple of 63 keeps the lane-packed
// batches full; small enough that static striding load-balances fault
// dropping, large enough to amortize per-task evaluator construction.
constexpr std::size_t kChunkFaults = 63 * 16;

/// Shared per-run engine context: the compiled program and observe-cone
/// prefilter are built once (for the compiled engines) and shared read-only
/// by every worker; each task then constructs its own evaluator.
struct EngineContext {
  EngineContext(Engine engine, const Netlist& nl, const ObserveSet& observe)
      : engine(engine), nl(nl) {
    if (engine != Engine::kReference) {
      compiled.emplace(nl);
      reach_store = compiled->fanin_cone(observe);
      reach = reach_store.data();
    }
  }

  /// Calls grade(ev, reach) on a freshly built evaluator for this engine.
  template <typename GradeFn>
  void grade_with_evaluator(const GradeFn& grade) const {
    if (engine == Engine::kReference) {
      Evaluator ev(nl);
      grade(ev);
    } else {
      CompiledEvaluator ev(*compiled,
                           /*event_driven=*/engine == Engine::kEvent);
      grade(ev);
    }
  }

  Engine engine;
  const Netlist& nl;
  std::optional<CompiledNetlist> compiled;
  std::vector<std::uint8_t> reach_store;
  const std::uint8_t* reach = nullptr;
};

/// Partitions [0, n_faults) into kChunkFaults-sized slices and runs
/// grade(begin, end) for each on the pool. Slices are disjoint, so workers
/// write disjoint flag ranges and no synchronization of results is needed.
template <typename GradeFn>
void run_partitioned(std::size_t n_faults, unsigned num_threads,
                     const GradeFn& grade) {
  const std::size_t n_tasks = (n_faults + kChunkFaults - 1) / kChunkFaults;
  ThreadPool pool(resolve_thread_count(num_threads));
  const std::function<void(std::size_t)> task = [&](std::size_t t) {
    const std::size_t begin = t * kChunkFaults;
    const std::size_t end = std::min(begin + kChunkFaults, n_faults);
    grade(begin, end);
  };
  pool.run_static(n_tasks, task);
}

}  // namespace

CoverageResult simulate_comb_parallel(const Netlist& nl,
                                      const std::vector<Fault>& faults,
                                      const PatternSet& patterns,
                                      const ObserveSet& observe_in,
                                      const SimOptions& options) {
  detail::require_combinational(nl, "simulate_comb_parallel");
  const ObserveSet observe = detail::resolve_observe(nl, observe_in);
  nl.topo_order();  // warm the shared cache before workers touch it

  CoverageResult res;
  res.total = faults.size();
  res.detected_flags.assign(faults.size(), 0);
  if (faults.empty()) {
    res.recount();
    return res;
  }

  const EngineContext ctx(options.engine, nl, observe);

  if (options.lane_parallel) {
    run_partitioned(faults.size(), options.num_threads,
                    [&](std::size_t begin, std::size_t end) {
                      ctx.grade_with_evaluator([&](auto& ev) {
                        detail::grade_comb_lanes(ev, faults, begin, end,
                                                 patterns, observe, ctx.reach,
                                                 res.detected_flags.data());
                      });
                    });
  } else {
    // Fault-free responses, computed once and shared read-only.
    std::vector<std::vector<std::uint64_t>> good_out(patterns.block_count());
    ctx.grade_with_evaluator([&](auto& good) {
      for (std::size_t b = 0; b < patterns.block_count(); ++b) {
        detail::apply_block(good, patterns, b);
        good.eval();
        good_out[b].resize(observe.size());
        for (std::size_t o = 0; o < observe.size(); ++o) {
          good_out[b][o] = good.value(observe[o]);
        }
      }
    });
    run_partitioned(faults.size(), options.num_threads,
                    [&](std::size_t begin, std::size_t end) {
                      ctx.grade_with_evaluator([&](auto& ev) {
                        detail::grade_comb_blocks(
                            ev, faults, begin, end, patterns, observe,
                            good_out, ctx.reach, res.detected_flags.data());
                      });
                    });
  }
  res.recount();
  return res;
}

CoverageResult simulate_seq_parallel(const Netlist& nl,
                                     const std::vector<Fault>& faults,
                                     const SeqStimulus& stimulus,
                                     const ObserveSet& observe_in,
                                     const SimOptions& options) {
  const ObserveSet observe = detail::resolve_observe(nl, observe_in);
  nl.topo_order();  // warm the shared cache before workers touch it

  CoverageResult res;
  res.total = faults.size();
  res.detected_flags.assign(faults.size(), 0);
  if (faults.empty()) {
    res.recount();
    return res;
  }

  const EngineContext ctx(options.engine, nl, observe);

  run_partitioned(faults.size(), options.num_threads,
                  [&](std::size_t begin, std::size_t end) {
                    ctx.grade_with_evaluator([&](auto& ev) {
                      detail::grade_seq_batches(ev, faults, begin, end,
                                                stimulus, observe, ctx.reach,
                                                res.detected_flags.data());
                    });
                  });
  res.recount();
  return res;
}

}  // namespace sbst::fault
