#include "fault/sim_parallel.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "fault/sim_detail.hpp"

namespace sbst::fault {

using netlist::Evaluator;
using netlist::NetId;
using netlist::Netlist;

namespace {

// Faults per fault-partitioned task. A multiple of 63 keeps the lane-packed
// batches full; small enough that static striding load-balances fault
// dropping, large enough to amortize per-task Evaluator construction.
constexpr std::size_t kChunkFaults = 63 * 16;

/// Lane-packed grading of faults [begin, end): lane 0 is the fault-free
/// machine, lanes 1..63 carry faulty machines, each pattern is broadcast
/// into all lanes. Batch-level fault dropping: a batch stops consuming
/// patterns once every lane has been detected.
void grade_comb_lanes(const Netlist& nl, const std::vector<Fault>& faults,
                      std::size_t begin, std::size_t end,
                      const PatternSet& patterns, const ObserveSet& observe,
                      std::uint8_t* flags) {
  Evaluator ev(nl);
  for (std::size_t base = begin; base < end; base += 63) {
    const std::size_t batch = std::min<std::size_t>(63, end - base);
    const std::uint64_t batch_lanes =
        low_mask(static_cast<unsigned>(batch)) << 1;
    ev.clear_faults();
    for (std::size_t j = 0; j < batch; ++j) {
      const Fault& f = faults[base + j];
      ev.inject(f.site, f.stuck_value, std::uint64_t{1} << (j + 1));
    }
    std::uint64_t detected = 0;
    for (std::size_t p = 0;
         p < patterns.size() && (detected & batch_lanes) != batch_lanes;
         ++p) {
      detail::apply_pattern_broadcast(ev, patterns, p);
      ev.eval();
      for (NetId out : observe) detected |= ev.diff_mask(out, 0);
    }
    for (std::size_t j = 0; j < batch; ++j) {
      if ((detected >> (j + 1)) & 1u) flags[base + j] = 1;
    }
  }
}

/// Pattern-packed grading of faults [begin, end): classic PPSFP — 64 packed
/// patterns per block, one faulty eval per undetected fault per block —
/// against fault-free responses precomputed once for all workers.
void grade_comb_blocks(const Netlist& nl, const std::vector<Fault>& faults,
                       std::size_t begin, std::size_t end,
                       const PatternSet& patterns, const ObserveSet& observe,
                       const std::vector<std::vector<std::uint64_t>>& good_out,
                       std::uint8_t* flags) {
  Evaluator bad(nl);
  std::size_t undetected = end - begin;
  for (std::size_t b = 0; b < patterns.block_count() && undetected > 0; ++b) {
    const std::uint64_t valid = patterns.valid_lanes(b);
    detail::apply_block(bad, patterns, b);
    for (std::size_t f = begin; f < end; ++f) {
      if (flags[f]) continue;  // fault dropping
      bad.clear_faults();
      bad.inject(faults[f].site, faults[f].stuck_value, ~std::uint64_t{0});
      bad.eval();
      for (std::size_t o = 0; o < observe.size(); ++o) {
        if ((good_out[b][o] ^ bad.value(observe[o])) & valid) {
          flags[f] = 1;
          --undetected;
          break;
        }
      }
    }
  }
}

/// simulate_seq's 63-faults-per-batch parallel-fault loop over [begin, end).
void grade_seq_batches(const Netlist& nl, const std::vector<Fault>& faults,
                       std::size_t begin, std::size_t end,
                       const SeqStimulus& stimulus, const ObserveSet& observe,
                       std::uint8_t* flags) {
  const auto& inputs = nl.inputs();
  Evaluator ev(nl);
  for (std::size_t base = begin; base < end; base += 63) {
    const std::size_t batch = std::min<std::size_t>(63, end - base);
    ev.clear_faults();
    ev.reset_state(false);
    for (std::size_t j = 0; j < batch; ++j) {
      const Fault& f = faults[base + j];
      ev.inject(f.site, f.stuck_value, std::uint64_t{1} << (j + 1));
    }
    std::uint64_t detected_lanes = 0;
    for (std::size_t c = 0; c < stimulus.size(); ++c) {
      for (std::size_t k = 0; k < inputs.size(); ++k) {
        ev.set_input(inputs[k], stimulus.input_bit(c, k));
      }
      ev.step();
      if (stimulus.observed(c)) {
        for (NetId out : observe) {
          detected_lanes |= ev.diff_mask(out, 0);
        }
      }
    }
    for (std::size_t j = 0; j < batch; ++j) {
      if ((detected_lanes >> (j + 1)) & 1u) flags[base + j] = 1;
    }
  }
}

/// Partitions [0, n_faults) into kChunkFaults-sized slices and runs
/// grade(begin, end) for each on the pool. Slices are disjoint, so workers
/// write disjoint flag ranges and no synchronization of results is needed.
template <typename GradeFn>
void run_partitioned(std::size_t n_faults, unsigned num_threads,
                     const GradeFn& grade) {
  const std::size_t n_tasks = (n_faults + kChunkFaults - 1) / kChunkFaults;
  ThreadPool pool(resolve_thread_count(num_threads));
  const std::function<void(std::size_t)> task = [&](std::size_t t) {
    const std::size_t begin = t * kChunkFaults;
    const std::size_t end = std::min(begin + kChunkFaults, n_faults);
    grade(begin, end);
  };
  pool.run_static(n_tasks, task);
}

}  // namespace

CoverageResult simulate_comb_parallel(const Netlist& nl,
                                      const std::vector<Fault>& faults,
                                      const PatternSet& patterns,
                                      const ObserveSet& observe_in,
                                      const SimOptions& options) {
  detail::require_combinational(nl, "simulate_comb_parallel");
  const ObserveSet observe = detail::resolve_observe(nl, observe_in);
  nl.topo_order();  // warm the shared cache before workers touch it

  CoverageResult res;
  res.total = faults.size();
  res.detected_flags.assign(faults.size(), 0);
  if (faults.empty()) {
    res.recount();
    return res;
  }

  if (options.lane_parallel) {
    run_partitioned(faults.size(), options.num_threads,
                    [&](std::size_t begin, std::size_t end) {
                      grade_comb_lanes(nl, faults, begin, end, patterns,
                                       observe, res.detected_flags.data());
                    });
  } else {
    // Fault-free responses, computed once and shared read-only.
    std::vector<std::vector<std::uint64_t>> good_out(patterns.block_count());
    Evaluator good(nl);
    for (std::size_t b = 0; b < patterns.block_count(); ++b) {
      detail::apply_block(good, patterns, b);
      good.eval();
      good_out[b].resize(observe.size());
      for (std::size_t o = 0; o < observe.size(); ++o) {
        good_out[b][o] = good.value(observe[o]);
      }
    }
    run_partitioned(faults.size(), options.num_threads,
                    [&](std::size_t begin, std::size_t end) {
                      grade_comb_blocks(nl, faults, begin, end, patterns,
                                        observe, good_out,
                                        res.detected_flags.data());
                    });
  }
  res.recount();
  return res;
}

CoverageResult simulate_seq_parallel(const Netlist& nl,
                                     const std::vector<Fault>& faults,
                                     const SeqStimulus& stimulus,
                                     const ObserveSet& observe_in,
                                     const SimOptions& options) {
  const ObserveSet observe = detail::resolve_observe(nl, observe_in);
  nl.topo_order();  // warm the shared cache before workers touch it

  CoverageResult res;
  res.total = faults.size();
  res.detected_flags.assign(faults.size(), 0);
  if (faults.empty()) {
    res.recount();
    return res;
  }

  run_partitioned(faults.size(), options.num_threads,
                  [&](std::size_t begin, std::size_t end) {
                    grade_seq_batches(nl, faults, begin, end, stimulus,
                                      observe, res.detected_flags.data());
                  });
  res.recount();
  return res;
}

}  // namespace sbst::fault
