#include "fault/sim_parallel.hpp"

#include <algorithm>
#include <stdexcept>
#include <type_traits>

#include "common/bits.hpp"
#include "fault/sim_detail.hpp"
#include "netlist/compiled.hpp"

namespace sbst::fault {

namespace {

// Faults per fault-partitioned task: a multiple of the context's lane-packed
// batch size (64 * lanes - 1), so batches stay full; small enough that
// static striding load-balances fault dropping, large enough to amortize
// per-task evaluator construction. Depends only on the context (never the
// thread count), so chunk boundaries — and therefore flags — stay
// deterministic.
std::size_t chunk_faults(const EngineContext& ctx) {
  const std::size_t batch = 64 * ctx.lanes() - 1;
  return batch * std::max<std::size_t>(1, 1008 / batch);
}

/// Runs a plan on the external pool if one was lent in, else on a per-call
/// pool sized by the usual num_threads resolution.
void run_plan(GradingPlan& plan, const SimOptions& options) {
  if (options.pool) {
    plan.run(*options.pool);
  } else {
    ThreadPool pool(resolve_thread_count(options.num_threads));
    plan.run(pool);
  }
}

}  // namespace

void GradingPlan::add_comb(const EngineContext& ctx,
                           const std::vector<Fault>& faults,
                           const PatternSet& patterns, bool lane_parallel,
                           CoverageResult& out) {
  detail::require_combinational(ctx.netlist(), "GradingPlan::add_comb");
  out.total = faults.size();
  out.detected_flags.assign(faults.size(), 0);
  if (faults.empty()) return;
  std::uint8_t* flags = out.detected_flags.data();

  const FaultModel model = detail::list_model(faults);
  const std::size_t chunk = chunk_faults(ctx);

  if (model == FaultModel::kTransition) {
    // The launch/capture pairing needs good LINE values, which only the
    // reference evaluator can provide post-fusion — precomputed once here,
    // shared read-only by every chunk task.
    auto& baseline = transition_storage_.emplace_back(
        detail::make_transition_baseline(ctx.netlist(), patterns,
                                         ctx.observe()));
    for (std::size_t begin = 0; begin < faults.size(); begin += chunk) {
      const std::size_t end = std::min(begin + chunk, faults.size());
      tasks_.push_back([&ctx, &faults, &patterns, &baseline, flags, begin,
                        end] {
        ctx.grade_with_evaluator([&](auto& ev) {
          detail::grade_transition_blocks(ev, faults, begin, end, patterns,
                                          ctx.observe(), baseline,
                                          ctx.reach(), flags);
        });
      });
    }
    return;
  }

  const bool windowed = model == FaultModel::kTransientSEU ||
                        model == FaultModel::kIntermittent;
  if (windowed && lane_parallel) {
    for (std::size_t begin = 0; begin < faults.size(); begin += chunk) {
      const std::size_t end = std::min(begin + chunk, faults.size());
      tasks_.push_back([&ctx, &faults, &patterns, flags, begin, end] {
        ctx.grade_with_evaluator([&](auto& ev) {
          detail::grade_windowed_lanes(ev, faults, begin, end, patterns,
                                       ctx.observe(), ctx.reach(), flags);
        });
      });
    }
    return;
  }

  if (!lane_parallel) {
    // Fault-free responses, computed once here and shared read-only by every
    // chunk task of this grading.
    auto& good_out = good_storage_.emplace_back(patterns.block_count());
    ctx.grade_with_evaluator([&](auto& good) {
      constexpr unsigned W = std::decay_t<decltype(good)>::kWords;
      const std::size_t n_blocks = patterns.block_count();
      for (std::size_t b = 0; b < n_blocks; b += W) {
        detail::apply_block_group(good, patterns, b);
        good.eval();
        for (unsigned w = 0; w < W && b + w < n_blocks; ++w) {
          good_out[b + w].resize(ctx.observe().size());
          for (std::size_t o = 0; o < ctx.observe().size(); ++o) {
            good_out[b + w][o] = good.value_word(ctx.observe()[o], w);
          }
        }
      }
    });
    for (std::size_t begin = 0; begin < faults.size(); begin += chunk) {
      const std::size_t end = std::min(begin + chunk, faults.size());
      tasks_.push_back([&ctx, &faults, &patterns, &good_out, flags, begin,
                        end, windowed] {
        ctx.grade_with_evaluator([&](auto& ev) {
          if (windowed) {
            detail::grade_windowed_blocks(ev, faults, begin, end, patterns,
                                          ctx.observe(), good_out,
                                          ctx.reach(), flags);
          } else {
            detail::grade_comb_blocks(ev, faults, begin, end, patterns,
                                      ctx.observe(), good_out, ctx.reach(),
                                      flags);
          }
        });
      });
    }
    return;
  }

  for (std::size_t begin = 0; begin < faults.size(); begin += chunk) {
    const std::size_t end = std::min(begin + chunk, faults.size());
    tasks_.push_back([&ctx, &faults, &patterns, flags, begin, end] {
      ctx.grade_with_evaluator([&](auto& ev) {
        detail::grade_comb_lanes(ev, faults, begin, end, patterns,
                                 ctx.observe(), ctx.reach(), flags);
      });
    });
  }
}

void GradingPlan::add_seq(const EngineContext& ctx,
                          const std::vector<Fault>& faults,
                          const SeqStimulus& stimulus, CoverageResult& out) {
  out.total = faults.size();
  out.detected_flags.assign(faults.size(), 0);
  if (faults.empty()) return;
  std::uint8_t* flags = out.detected_flags.data();

  const FaultModel model = detail::list_model(faults);
  if (model == FaultModel::kTransition) {
    throw std::invalid_argument(
        "GradingPlan::add_seq: transition faults are combinational-only "
        "(launch/capture pattern pairs); use add_comb");
  }
  const bool windowed = model != FaultModel::kStuckAt;
  const std::size_t chunk = chunk_faults(ctx);
  for (std::size_t begin = 0; begin < faults.size(); begin += chunk) {
    const std::size_t end = std::min(begin + chunk, faults.size());
    tasks_.push_back([&ctx, &faults, &stimulus, flags, begin, end, windowed] {
      ctx.grade_with_evaluator([&](auto& ev) {
        if (windowed) {
          detail::grade_windowed_seq_batches(ev, faults, begin, end, stimulus,
                                             ctx.observe(), ctx.reach(),
                                             flags);
        } else {
          detail::grade_seq_batches(ev, faults, begin, end, stimulus,
                                    ctx.observe(), ctx.reach(), flags);
        }
      });
    });
  }
}

void GradingPlan::run(ThreadPool& pool) {
  std::vector<ThreadPool::TaskFailure> failures = run_capture(pool);
  if (!failures.empty()) std::rethrow_exception(failures.front().error);
}

std::vector<ThreadPool::TaskFailure> GradingPlan::run_capture(
    ThreadPool& pool) {
  std::vector<ThreadPool::TaskFailure> failures;
  if (!tasks_.empty()) {
    const std::function<void(std::size_t)> task = [this](std::size_t t) {
      tasks_[t]();
    };
    failures = pool.run_static_capture(tasks_.size(), task);
  }
  tasks_.clear();
  good_storage_.clear();
  transition_storage_.clear();
  return failures;
}

CoverageResult simulate_comb_parallel(const netlist::Netlist& nl,
                                      const std::vector<Fault>& faults,
                                      const PatternSet& patterns,
                                      const ObserveSet& observe,
                                      const SimOptions& options) {
  detail::require_combinational(nl, "simulate_comb_parallel");
  const EngineContext ctx(options.engine, nl, observe, options.compiled,
                          options.reach, options.lanes, options.netlist_opt,
                          options.store);
  CoverageResult res;
  GradingPlan plan;
  plan.add_comb(ctx, faults, patterns, options.lane_parallel, res);
  run_plan(plan, options);
  res.recount();
  return res;
}

CoverageResult simulate_seq_parallel(const netlist::Netlist& nl,
                                     const std::vector<Fault>& faults,
                                     const SeqStimulus& stimulus,
                                     const ObserveSet& observe,
                                     const SimOptions& options) {
  const EngineContext ctx(options.engine, nl, observe, options.compiled,
                          options.reach, options.lanes, options.netlist_opt,
                          options.store);
  CoverageResult res;
  GradingPlan plan;
  plan.add_seq(ctx, faults, stimulus, res);
  run_plan(plan, options);
  res.recount();
  return res;
}

}  // namespace sbst::fault
