#include "fault/sim_parallel.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "fault/sim_detail.hpp"
#include "netlist/compiled.hpp"

namespace sbst::fault {

namespace {

// Faults per fault-partitioned task. A multiple of 63 keeps the lane-packed
// batches full; small enough that static striding load-balances fault
// dropping, large enough to amortize per-task evaluator construction.
constexpr std::size_t kChunkFaults = 63 * 16;

/// Runs a plan on the external pool if one was lent in, else on a per-call
/// pool sized by the usual num_threads resolution.
void run_plan(GradingPlan& plan, const SimOptions& options) {
  if (options.pool) {
    plan.run(*options.pool);
  } else {
    ThreadPool pool(resolve_thread_count(options.num_threads));
    plan.run(pool);
  }
}

}  // namespace

void GradingPlan::add_comb(const EngineContext& ctx,
                           const std::vector<Fault>& faults,
                           const PatternSet& patterns, bool lane_parallel,
                           CoverageResult& out) {
  detail::require_combinational(ctx.netlist(), "GradingPlan::add_comb");
  out.total = faults.size();
  out.detected_flags.assign(faults.size(), 0);
  if (faults.empty()) return;
  std::uint8_t* flags = out.detected_flags.data();

  if (!lane_parallel) {
    // Fault-free responses, computed once here and shared read-only by every
    // chunk task of this grading.
    auto& good_out = good_storage_.emplace_back(patterns.block_count());
    ctx.grade_with_evaluator([&](auto& good) {
      for (std::size_t b = 0; b < patterns.block_count(); ++b) {
        detail::apply_block(good, patterns, b);
        good.eval();
        good_out[b].resize(ctx.observe().size());
        for (std::size_t o = 0; o < ctx.observe().size(); ++o) {
          good_out[b][o] = good.value(ctx.observe()[o]);
        }
      }
    });
    for (std::size_t begin = 0; begin < faults.size(); begin += kChunkFaults) {
      const std::size_t end = std::min(begin + kChunkFaults, faults.size());
      tasks_.push_back([&ctx, &faults, &patterns, &good_out, flags, begin,
                        end] {
        ctx.grade_with_evaluator([&](auto& ev) {
          detail::grade_comb_blocks(ev, faults, begin, end, patterns,
                                    ctx.observe(), good_out, ctx.reach(),
                                    flags);
        });
      });
    }
    return;
  }

  for (std::size_t begin = 0; begin < faults.size(); begin += kChunkFaults) {
    const std::size_t end = std::min(begin + kChunkFaults, faults.size());
    tasks_.push_back([&ctx, &faults, &patterns, flags, begin, end] {
      ctx.grade_with_evaluator([&](auto& ev) {
        detail::grade_comb_lanes(ev, faults, begin, end, patterns,
                                 ctx.observe(), ctx.reach(), flags);
      });
    });
  }
}

void GradingPlan::add_seq(const EngineContext& ctx,
                          const std::vector<Fault>& faults,
                          const SeqStimulus& stimulus, CoverageResult& out) {
  out.total = faults.size();
  out.detected_flags.assign(faults.size(), 0);
  if (faults.empty()) return;
  std::uint8_t* flags = out.detected_flags.data();

  for (std::size_t begin = 0; begin < faults.size(); begin += kChunkFaults) {
    const std::size_t end = std::min(begin + kChunkFaults, faults.size());
    tasks_.push_back([&ctx, &faults, &stimulus, flags, begin, end] {
      ctx.grade_with_evaluator([&](auto& ev) {
        detail::grade_seq_batches(ev, faults, begin, end, stimulus,
                                  ctx.observe(), ctx.reach(), flags);
      });
    });
  }
}

void GradingPlan::run(ThreadPool& pool) {
  std::vector<ThreadPool::TaskFailure> failures = run_capture(pool);
  if (!failures.empty()) std::rethrow_exception(failures.front().error);
}

std::vector<ThreadPool::TaskFailure> GradingPlan::run_capture(
    ThreadPool& pool) {
  std::vector<ThreadPool::TaskFailure> failures;
  if (!tasks_.empty()) {
    const std::function<void(std::size_t)> task = [this](std::size_t t) {
      tasks_[t]();
    };
    failures = pool.run_static_capture(tasks_.size(), task);
  }
  tasks_.clear();
  good_storage_.clear();
  return failures;
}

CoverageResult simulate_comb_parallel(const netlist::Netlist& nl,
                                      const std::vector<Fault>& faults,
                                      const PatternSet& patterns,
                                      const ObserveSet& observe,
                                      const SimOptions& options) {
  detail::require_combinational(nl, "simulate_comb_parallel");
  const EngineContext ctx(options.engine, nl, observe, options.compiled,
                          options.reach);
  CoverageResult res;
  GradingPlan plan;
  plan.add_comb(ctx, faults, patterns, options.lane_parallel, res);
  run_plan(plan, options);
  res.recount();
  return res;
}

CoverageResult simulate_seq_parallel(const netlist::Netlist& nl,
                                     const std::vector<Fault>& faults,
                                     const SeqStimulus& stimulus,
                                     const ObserveSet& observe,
                                     const SimOptions& options) {
  const EngineContext ctx(options.engine, nl, observe, options.compiled,
                          options.reach);
  CoverageResult res;
  GradingPlan plan;
  plan.add_seq(ctx, faults, stimulus, res);
  run_plan(plan, options);
  res.recount();
  return res;
}

}  // namespace sbst::fault
