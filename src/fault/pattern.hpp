// Pattern containers for fault simulation.
//
// PatternSet: combinational stimuli, stored pre-packed 64 patterns per block
// so the PPSFP simulator applies them with zero repacking.
// SeqStimulus: cycle-accurate sequential stimuli with per-cycle observation
// points (the instants at which a self-test routine samples CUT outputs).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "netlist/netlist.hpp"

namespace sbst::fault {

/// Named port assignment used when adding patterns/cycles.
using PortValue = std::pair<std::string, std::uint64_t>;

class PatternSet {
 public:
  explicit PatternSet(const netlist::Netlist& nl);

  /// Adds one pattern given as {port, value} pairs; unlisted inputs are 0.
  void add(std::initializer_list<PortValue> values) {
    add(std::vector<PortValue>(values));
  }
  void add(const std::vector<PortValue>& values);

  /// Adds one uniformly random pattern over all inputs.
  void add_random(Rng& rng);

  std::size_t size() const { return count_; }
  std::size_t block_count() const { return blocks_.size(); }

  /// Packed words for block `b`: one word per input net, indexed like
  /// netlist().inputs(). Lanes beyond the pattern count repeat pattern 0 of
  /// the block (harmless: detection masks are ANDed with valid_lanes).
  const std::vector<std::uint64_t>& block(std::size_t b) const {
    return blocks_[b];
  }
  std::uint64_t valid_lanes(std::size_t b) const;

  const netlist::Netlist& netlist() const { return *nl_; }

  /// Decodes the value of input port `port` in pattern `index` (for reports
  /// and for cross-checking against the serial simulator).
  std::uint64_t value_of(std::size_t index, const std::string& port) const;

  /// Binary-image format version (part of the artifact-store key).
  static constexpr std::uint32_t kSerialVersion = 1;

  /// Appends a versioned binary image of the packed patterns to `w`.
  void serialize(common::ByteWriter& w) const;

  /// Rebuilds a pattern set from serialize() bytes produced against a
  /// netlist with the same input ordering as `nl`. Returns nullptr on any
  /// malformed image (wrong version, truncation, block-shape mismatch);
  /// the caller then regenerates the patterns from scratch.
  static std::unique_ptr<PatternSet> deserialize(const netlist::Netlist& nl,
                                                 common::ByteReader& r);

 private:
  const netlist::Netlist* nl_;
  std::vector<std::size_t> index_map_;  // net id -> index in nl.inputs()
  std::size_t count_ = 0;
  std::vector<std::vector<std::uint64_t>> blocks_;
};

class SeqStimulus {
 public:
  explicit SeqStimulus(const netlist::Netlist& nl);

  /// Appends a cycle; unlisted inputs are 0. If `observe` is true the
  /// simulator compares all observed outputs at the end of this cycle.
  void add_cycle(const std::vector<PortValue>& values, bool observe);
  void add_cycle(std::initializer_list<PortValue> values, bool observe) {
    add_cycle(std::vector<PortValue>(values), observe);
  }

  std::size_t size() const { return cycles_.size(); }
  std::size_t observe_count() const { return observe_count_; }

  /// Input bit (0/1) for input-net index `k` in cycle `c`.
  bool input_bit(std::size_t c, std::size_t k) const {
    return (cycles_[c].bits[k >> 6] >> (k & 63)) & 1u;
  }
  bool observed(std::size_t c) const { return cycles_[c].observe; }

  const netlist::Netlist& netlist() const { return *nl_; }

 private:
  struct Cycle {
    std::vector<std::uint64_t> bits;
    bool observe;
  };
  const netlist::Netlist* nl_;
  std::vector<std::size_t> index_map_;
  std::vector<Cycle> cycles_;
  std::size_t observe_count_ = 0;
};

}  // namespace sbst::fault
