// Transition (gross-delay) fault model — the natural extension of the
// paper's stuck-at methodology toward the delay-fault SBST work that
// followed it (e.g. Singh et al., "Software-Based Delay Fault Testing of
// Processor Cores").
//
// A slow-to-rise (STR) fault on a line is detected by a *pattern pair*
// (v1, v2) where v1 sets the line to 0, v2 sets it to 1, and the faulty
// value (still 0) propagates to an observed output under v2 — i.e. v2 is a
// stuck-at-0 test for the line. Slow-to-fall (STF) is the dual. In SBST the
// pair is applied by consecutive instructions, so consecutive patterns of a
// PatternSet model exactly what a routine can deliver.
#pragma once

#include <vector>

#include "fault/fault.hpp"
#include "fault/pattern.hpp"
#include "fault/sim.hpp"

namespace sbst::fault {

struct TransitionFault {
  netlist::Site site;
  bool slow_to_rise = true;  // false = slow-to-fall

  friend bool operator==(const TransitionFault&,
                         const TransitionFault&) = default;
};

std::string transition_fault_name(const netlist::Netlist& nl,
                                  const TransitionFault& f);

/// STR and STF faults on every collapsed stuck-at site (transition faults
/// collapse with the same structural equivalences as stuck-at faults of the
/// captured value).
std::vector<TransitionFault> enumerate_transition_faults(
    const netlist::Netlist& nl);

/// Grades transition faults against consecutive pattern pairs
/// (patterns[i], patterns[i+1]) of `patterns` — the launch-on-instruction
/// sequence a self-test routine produces. Combinational netlists only.
CoverageResult simulate_transition(const netlist::Netlist& nl,
                                   const std::vector<TransitionFault>& faults,
                                   const PatternSet& patterns,
                                   const ObserveSet& observe = {});

}  // namespace sbst::fault
