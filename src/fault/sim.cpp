#include "fault/sim.hpp"

#include <stdexcept>

#include "fault/sim_detail.hpp"
#include "netlist/compiled.hpp"

namespace sbst::fault {

using netlist::CompiledEvaluator;
using netlist::CompiledNetlist;
using netlist::Evaluator;
using netlist::Netlist;
using netlist::NetId;

namespace detail {

ObserveSet resolve_observe(const Netlist& nl, const ObserveSet& observe) {
  if (!observe.empty()) return observe;
  ObserveSet all = nl.output_nets();
  if (all.empty()) {
    throw std::invalid_argument("fault sim: netlist has no outputs");
  }
  return all;
}

void require_combinational(const Netlist& nl, const char* who) {
  if (!nl.is_combinational()) {
    throw std::invalid_argument(std::string(who) +
                                ": netlist has flip-flops; use simulate_seq");
  }
}

FaultModel list_model(const std::vector<Fault>& faults) {
  if (faults.empty()) return FaultModel::kStuckAt;
  const FaultModel model = faults.front().model;
  for (const Fault& f : faults) {
    if (f.model != model) {
      throw std::invalid_argument(
          "fault sim: mixed fault models in one grading call; "
          "grade each model separately");
    }
  }
  return model;
}

TransitionBaseline make_transition_baseline(const Netlist& nl,
                                            const PatternSet& patterns,
                                            const ObserveSet& observe) {
  TransitionBaseline base;
  const std::size_t n_blocks = patterns.block_count();
  base.vals.resize(n_blocks);
  base.out.resize(n_blocks);
  Evaluator good(nl);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    apply_block(good, patterns, b);
    good.eval();
    base.vals[b].resize(nl.size());
    for (NetId id = 0; id < nl.size(); ++id) {
      base.vals[b][id] = good.value(id);
    }
    base.out[b].resize(observe.size());
    for (std::size_t o = 0; o < observe.size(); ++o) {
      base.out[b][o] = good.value(observe[o]);
    }
  }
  return base;
}

}  // namespace detail

namespace {

/// Runs `grade(ev, reach)` with the evaluator the engine calls for: the
/// reference Evaluator (no prefilter), or a CompiledEvaluator — full-sweep
/// or event-driven — with the observe-cone prefilter.
template <typename GradeFn>
void with_engine(Engine engine, const Netlist& nl, const ObserveSet& observe,
                 unsigned lanes, const GradeFn& grade) {
  const EngineContext ctx(engine, nl, observe, /*compiled=*/nullptr,
                          /*reach=*/nullptr, lanes);
  ctx.grade_with_evaluator([&](auto& ev) { grade(ev, ctx.reach()); });
}

}  // namespace

CoverageResult simulate_serial(const Netlist& nl,
                               const std::vector<Fault>& faults,
                               const PatternSet& patterns,
                               const ObserveSet& observe_in, Engine engine,
                               unsigned lanes) {
  detail::require_combinational(nl, "simulate_serial");
  const ObserveSet observe = detail::resolve_observe(nl, observe_in);

  CoverageResult res;
  res.total = faults.size();
  res.detected_flags.assign(faults.size(), 0);
  switch (detail::list_model(faults)) {
    case FaultModel::kStuckAt:
      with_engine(engine, nl, observe, lanes,
                  [&](auto& ev, const std::uint8_t* reach) {
        detail::grade_serial(ev, faults, patterns, observe, reach,
                             res.detected_flags.data());
      });
      break;
    case FaultModel::kTransition: {
      // Transition faults have no meaningful one-pattern-at-a-time oracle:
      // detection is a property of pattern PAIRS, so the block grader (which
      // is the canonical pairing algorithm) serves as the serial path too.
      const auto baseline =
          detail::make_transition_baseline(nl, patterns, observe);
      with_engine(engine, nl, observe, lanes,
                  [&](auto& ev, const std::uint8_t* reach) {
        detail::grade_transition_blocks(ev, faults, 0, faults.size(),
                                        patterns, observe, baseline, reach,
                                        res.detected_flags.data());
      });
      break;
    }
    case FaultModel::kTransientSEU:
    case FaultModel::kIntermittent:
      with_engine(engine, nl, observe, lanes,
                  [&](auto& ev, const std::uint8_t* reach) {
        detail::grade_windowed_serial(ev, faults, patterns, observe, reach,
                                      res.detected_flags.data());
      });
      break;
  }
  res.recount();
  return res;
}

CoverageResult simulate_comb(const Netlist& nl,
                             const std::vector<Fault>& faults,
                             const PatternSet& patterns,
                             const ObserveSet& observe_in, Engine engine,
                             unsigned lanes) {
  detail::require_combinational(nl, "simulate_comb");
  const ObserveSet observe = detail::resolve_observe(nl, observe_in);

  CoverageResult res;
  res.total = faults.size();
  res.detected_flags.assign(faults.size(), 0);
  switch (detail::list_model(faults)) {
    case FaultModel::kStuckAt:
      with_engine(engine, nl, observe, lanes,
                  [&](auto& ev, const std::uint8_t* reach) {
        detail::grade_comb(ev, faults, patterns, observe, reach,
                           res.detected_flags.data());
      });
      break;
    case FaultModel::kTransition: {
      const auto baseline =
          detail::make_transition_baseline(nl, patterns, observe);
      with_engine(engine, nl, observe, lanes,
                  [&](auto& ev, const std::uint8_t* reach) {
        detail::grade_transition_blocks(ev, faults, 0, faults.size(),
                                        patterns, observe, baseline, reach,
                                        res.detected_flags.data());
      });
      break;
    }
    case FaultModel::kTransientSEU:
    case FaultModel::kIntermittent:
      with_engine(engine, nl, observe, lanes,
                  [&](auto& ev, const std::uint8_t* reach) {
        detail::grade_windowed(ev, faults, patterns, observe, reach,
                               res.detected_flags.data());
      });
      break;
  }
  res.recount();
  return res;
}

CoverageResult simulate_seq(const Netlist& nl,
                            const std::vector<Fault>& faults,
                            const SeqStimulus& stimulus,
                            const ObserveSet& observe_in, Engine engine,
                            unsigned lanes) {
  const ObserveSet observe = detail::resolve_observe(nl, observe_in);

  CoverageResult res;
  res.total = faults.size();
  res.detected_flags.assign(faults.size(), 0);
  switch (detail::list_model(faults)) {
    case FaultModel::kStuckAt:
      with_engine(engine, nl, observe, lanes,
                  [&](auto& ev, const std::uint8_t* reach) {
        detail::grade_seq_batches(ev, faults, 0, faults.size(), stimulus,
                                  observe, reach, res.detected_flags.data());
      });
      break;
    case FaultModel::kTransition:
      throw std::invalid_argument(
          "simulate_seq: transition faults are combinational-only "
          "(launch/capture pattern pairs); use simulate_comb");
    case FaultModel::kTransientSEU:
    case FaultModel::kIntermittent:
      with_engine(engine, nl, observe, lanes,
                  [&](auto& ev, const std::uint8_t* reach) {
        detail::grade_windowed_seq_batches(ev, faults, 0, faults.size(),
                                           stimulus, observe, reach,
                                           res.detected_flags.data());
      });
      break;
  }
  res.recount();
  return res;
}

void simulate_comb_into(const EngineContext& ctx,
                        const std::vector<Fault>& faults,
                        const PatternSet& patterns, std::uint8_t* flags) {
  detail::require_combinational(ctx.netlist(), "simulate_comb_into");
  switch (detail::list_model(faults)) {
    case FaultModel::kStuckAt:
      ctx.grade_with_evaluator([&](auto& ev) {
        detail::grade_comb(ev, faults, patterns, ctx.observe(), ctx.reach(),
                           flags);
      });
      break;
    case FaultModel::kTransition: {
      const auto baseline = detail::make_transition_baseline(
          ctx.netlist(), patterns, ctx.observe());
      ctx.grade_with_evaluator([&](auto& ev) {
        detail::grade_transition_blocks(ev, faults, 0, faults.size(),
                                        patterns, ctx.observe(), baseline,
                                        ctx.reach(), flags);
      });
      break;
    }
    case FaultModel::kTransientSEU:
    case FaultModel::kIntermittent:
      ctx.grade_with_evaluator([&](auto& ev) {
        detail::grade_windowed(ev, faults, patterns, ctx.observe(),
                               ctx.reach(), flags);
      });
      break;
  }
}

std::vector<std::vector<bool>> good_responses(const Netlist& nl,
                                              const PatternSet& patterns,
                                              const ObserveSet& observe_in) {
  detail::require_combinational(nl, "good_responses");
  const ObserveSet observe = detail::resolve_observe(nl, observe_in);

  std::vector<std::vector<bool>> out;
  out.reserve(patterns.size());
  Evaluator ev(nl);
  for (std::size_t b = 0; b < patterns.block_count(); ++b) {
    detail::apply_block(ev, patterns, b);
    ev.eval();
    const std::size_t lanes =
        std::min<std::size_t>(64, patterns.size() - b * 64);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      std::vector<bool> row(observe.size());
      for (std::size_t o = 0; o < observe.size(); ++o) {
        row[o] = (ev.value(observe[o]) >> lane) & 1u;
      }
      out.push_back(std::move(row));
    }
  }
  return out;
}

}  // namespace sbst::fault
