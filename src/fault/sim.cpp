#include "fault/sim.hpp"

#include <stdexcept>

#include "fault/sim_detail.hpp"
#include "netlist/compiled.hpp"

namespace sbst::fault {

using netlist::CompiledEvaluator;
using netlist::CompiledNetlist;
using netlist::Evaluator;
using netlist::Netlist;
using netlist::NetId;

namespace detail {

ObserveSet resolve_observe(const Netlist& nl, const ObserveSet& observe) {
  if (!observe.empty()) return observe;
  ObserveSet all = nl.output_nets();
  if (all.empty()) {
    throw std::invalid_argument("fault sim: netlist has no outputs");
  }
  return all;
}

void require_combinational(const Netlist& nl, const char* who) {
  if (!nl.is_combinational()) {
    throw std::invalid_argument(std::string(who) +
                                ": netlist has flip-flops; use simulate_seq");
  }
}

}  // namespace detail

namespace {

/// Runs `grade(ev, reach)` with the evaluator the engine calls for: the
/// reference Evaluator (no prefilter), or a CompiledEvaluator — full-sweep
/// or event-driven — with the observe-cone prefilter.
template <typename GradeFn>
void with_engine(Engine engine, const Netlist& nl, const ObserveSet& observe,
                 unsigned lanes, const GradeFn& grade) {
  const EngineContext ctx(engine, nl, observe, /*compiled=*/nullptr,
                          /*reach=*/nullptr, lanes);
  ctx.grade_with_evaluator([&](auto& ev) { grade(ev, ctx.reach()); });
}

}  // namespace

CoverageResult simulate_serial(const Netlist& nl,
                               const std::vector<Fault>& faults,
                               const PatternSet& patterns,
                               const ObserveSet& observe_in, Engine engine,
                               unsigned lanes) {
  detail::require_combinational(nl, "simulate_serial");
  const ObserveSet observe = detail::resolve_observe(nl, observe_in);

  CoverageResult res;
  res.total = faults.size();
  res.detected_flags.assign(faults.size(), 0);
  with_engine(engine, nl, observe, lanes,
              [&](auto& ev, const std::uint8_t* reach) {
    detail::grade_serial(ev, faults, patterns, observe, reach,
                         res.detected_flags.data());
  });
  res.recount();
  return res;
}

CoverageResult simulate_comb(const Netlist& nl,
                             const std::vector<Fault>& faults,
                             const PatternSet& patterns,
                             const ObserveSet& observe_in, Engine engine,
                             unsigned lanes) {
  detail::require_combinational(nl, "simulate_comb");
  const ObserveSet observe = detail::resolve_observe(nl, observe_in);

  CoverageResult res;
  res.total = faults.size();
  res.detected_flags.assign(faults.size(), 0);
  with_engine(engine, nl, observe, lanes,
              [&](auto& ev, const std::uint8_t* reach) {
    detail::grade_comb(ev, faults, patterns, observe, reach,
                       res.detected_flags.data());
  });
  res.recount();
  return res;
}

CoverageResult simulate_seq(const Netlist& nl,
                            const std::vector<Fault>& faults,
                            const SeqStimulus& stimulus,
                            const ObserveSet& observe_in, Engine engine,
                            unsigned lanes) {
  const ObserveSet observe = detail::resolve_observe(nl, observe_in);

  CoverageResult res;
  res.total = faults.size();
  res.detected_flags.assign(faults.size(), 0);
  with_engine(engine, nl, observe, lanes,
              [&](auto& ev, const std::uint8_t* reach) {
    detail::grade_seq_batches(ev, faults, 0, faults.size(), stimulus, observe,
                              reach, res.detected_flags.data());
  });
  res.recount();
  return res;
}

void simulate_comb_into(const EngineContext& ctx,
                        const std::vector<Fault>& faults,
                        const PatternSet& patterns, std::uint8_t* flags) {
  detail::require_combinational(ctx.netlist(), "simulate_comb_into");
  ctx.grade_with_evaluator([&](auto& ev) {
    detail::grade_comb(ev, faults, patterns, ctx.observe(), ctx.reach(),
                       flags);
  });
}

std::vector<std::vector<bool>> good_responses(const Netlist& nl,
                                              const PatternSet& patterns,
                                              const ObserveSet& observe_in) {
  detail::require_combinational(nl, "good_responses");
  const ObserveSet observe = detail::resolve_observe(nl, observe_in);

  std::vector<std::vector<bool>> out;
  out.reserve(patterns.size());
  Evaluator ev(nl);
  for (std::size_t b = 0; b < patterns.block_count(); ++b) {
    detail::apply_block(ev, patterns, b);
    ev.eval();
    const std::size_t lanes =
        std::min<std::size_t>(64, patterns.size() - b * 64);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      std::vector<bool> row(observe.size());
      for (std::size_t o = 0; o < observe.size(); ++o) {
        row[o] = (ev.value(observe[o]) >> lane) & 1u;
      }
      out.push_back(std::move(row));
    }
  }
  return out;
}

}  // namespace sbst::fault
