#include "fault/sim.hpp"

#include <stdexcept>

#include "fault/sim_detail.hpp"

namespace sbst::fault {

using netlist::Evaluator;
using netlist::Netlist;
using netlist::NetId;

namespace detail {

ObserveSet resolve_observe(const Netlist& nl, const ObserveSet& observe) {
  if (!observe.empty()) return observe;
  ObserveSet all = nl.output_nets();
  if (all.empty()) {
    throw std::invalid_argument("fault sim: netlist has no outputs");
  }
  return all;
}

void require_combinational(const Netlist& nl, const char* who) {
  if (!nl.is_combinational()) {
    throw std::invalid_argument(std::string(who) +
                                ": netlist has flip-flops; use simulate_seq");
  }
}

void apply_block(Evaluator& ev, const PatternSet& patterns, std::size_t b) {
  const auto& words = patterns.block(b);
  const auto& inputs = patterns.netlist().inputs();
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    ev.set_input_word(inputs[k], words[k]);
  }
}

void apply_pattern_broadcast(Evaluator& ev, const PatternSet& patterns,
                             std::size_t p) {
  const auto& words = patterns.block(p / 64);
  const unsigned lane = p % 64;
  const auto& inputs = patterns.netlist().inputs();
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    ev.set_input(inputs[k], (words[k] >> lane) & 1u);
  }
}

}  // namespace detail

CoverageResult simulate_serial(const Netlist& nl,
                               const std::vector<Fault>& faults,
                               const PatternSet& patterns,
                               const ObserveSet& observe_in) {
  detail::require_combinational(nl, "simulate_serial");
  const ObserveSet observe = detail::resolve_observe(nl, observe_in);

  CoverageResult res;
  res.total = faults.size();
  res.detected_flags.assign(faults.size(), 0);

  Evaluator good(nl);
  Evaluator bad(nl);
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    detail::apply_pattern_broadcast(good, patterns, p);
    detail::apply_pattern_broadcast(bad, patterns, p);
    good.eval();
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (res.detected_flags[f]) continue;
      bad.clear_faults();
      bad.inject(faults[f].site, faults[f].stuck_value, ~std::uint64_t{0});
      bad.eval();
      for (NetId out : observe) {
        if ((good.value(out) ^ bad.value(out)) & 1u) {
          res.detected_flags[f] = 1;
          break;
        }
      }
    }
  }
  res.recount();
  return res;
}

CoverageResult simulate_comb(const Netlist& nl,
                             const std::vector<Fault>& faults,
                             const PatternSet& patterns,
                             const ObserveSet& observe_in) {
  detail::require_combinational(nl, "simulate_comb");
  const ObserveSet observe = detail::resolve_observe(nl, observe_in);

  CoverageResult res;
  res.total = faults.size();
  res.detected_flags.assign(faults.size(), 0);

  Evaluator good(nl);
  Evaluator bad(nl);
  std::vector<std::uint64_t> good_out(observe.size());

  for (std::size_t b = 0; b < patterns.block_count(); ++b) {
    const std::uint64_t valid = patterns.valid_lanes(b);
    detail::apply_block(good, patterns, b);
    detail::apply_block(bad, patterns, b);
    good.eval();
    for (std::size_t o = 0; o < observe.size(); ++o) {
      good_out[o] = good.value(observe[o]);
    }
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (res.detected_flags[f]) continue;  // fault dropping
      bad.clear_faults();
      bad.inject(faults[f].site, faults[f].stuck_value, ~std::uint64_t{0});
      bad.eval();
      for (std::size_t o = 0; o < observe.size(); ++o) {
        if ((good_out[o] ^ bad.value(observe[o])) & valid) {
          res.detected_flags[f] = 1;
          break;
        }
      }
    }
  }
  res.recount();
  return res;
}

CoverageResult simulate_seq(const Netlist& nl,
                            const std::vector<Fault>& faults,
                            const SeqStimulus& stimulus,
                            const ObserveSet& observe_in) {
  const ObserveSet observe = detail::resolve_observe(nl, observe_in);

  CoverageResult res;
  res.total = faults.size();
  res.detected_flags.assign(faults.size(), 0);

  const auto& inputs = nl.inputs();
  Evaluator ev(nl);

  // Batches of 63 faults; lane 0 is the fault-free machine.
  for (std::size_t base = 0; base < faults.size(); base += 63) {
    const std::size_t batch = std::min<std::size_t>(63, faults.size() - base);
    ev.clear_faults();
    ev.reset_state(false);
    for (std::size_t j = 0; j < batch; ++j) {
      const Fault& f = faults[base + j];
      ev.inject(f.site, f.stuck_value, std::uint64_t{1} << (j + 1));
    }
    std::uint64_t detected_lanes = 0;
    for (std::size_t c = 0; c < stimulus.size(); ++c) {
      for (std::size_t k = 0; k < inputs.size(); ++k) {
        ev.set_input(inputs[k], stimulus.input_bit(c, k));
      }
      ev.step();
      if (stimulus.observed(c)) {
        for (NetId out : observe) {
          detected_lanes |= ev.diff_mask(out, 0);
        }
      }
    }
    for (std::size_t j = 0; j < batch; ++j) {
      if ((detected_lanes >> (j + 1)) & 1u) {
        res.detected_flags[base + j] = 1;
      }
    }
  }
  res.recount();
  return res;
}

std::vector<std::vector<bool>> good_responses(const Netlist& nl,
                                              const PatternSet& patterns,
                                              const ObserveSet& observe_in) {
  detail::require_combinational(nl, "good_responses");
  const ObserveSet observe = detail::resolve_observe(nl, observe_in);

  std::vector<std::vector<bool>> out;
  out.reserve(patterns.size());
  Evaluator ev(nl);
  for (std::size_t b = 0; b < patterns.block_count(); ++b) {
    detail::apply_block(ev, patterns, b);
    ev.eval();
    const std::size_t lanes =
        std::min<std::size_t>(64, patterns.size() - b * 64);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      std::vector<bool> row(observe.size());
      for (std::size_t o = 0; o < observe.size(); ++o) {
        row[o] = (ev.value(observe[o]) >> lane) & 1u;
      }
      out.push_back(std::move(row));
    }
  }
  return out;
}

}  // namespace sbst::fault
