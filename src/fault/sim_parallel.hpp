// Parallel fault-simulation engines: PPSFP lane packing + a fault-partitioned
// thread pool.
//
// Both engines grade the same contract as sim.hpp and are cross-checked
// against those oracles by the differential tests in
// tests/test_fault_parallel.cpp:
//
//  * simulate_comb_parallel: combinational grading. With
//    SimOptions::lane_parallel the evaluator's 64 bit-lanes carry the good
//    machine (lane 0) plus 63 faulty machines per eval() — the same packing
//    simulate_seq uses — so one pass over the pattern set grades 63 faults;
//    without it, each worker runs the block-at-a-time PPSFP of simulate_comb
//    over its fault slice against precomputed fault-free responses.
//  * simulate_seq_parallel: sequential grading; workers run simulate_seq's
//    63-faults-per-batch loop over disjoint fault slices.
//
// Both compose with the evaluation engines in engine.hpp: with a compiled
// engine the netlist is compiled once and every worker runs its own
// CompiledEvaluator over the shared immutable program. SimOptions can lend
// in externally owned artifacts — a persistent ThreadPool, a pre-compiled
// netlist, a reach prefilter — so a long-lived caller (core::GradingSession)
// pays for pool startup, compilation, and cone marking once instead of per
// call.
//
// GradingPlan decomposes gradings into chunk tasks without running them, so
// a scheduler can interleave chunks from MANY gradings (different CUTs) plus
// arbitrary extra tasks on one pool — cross-CUT parallelism with the
// intra-CUT fault partitioning flattened into the same work queue, which is
// what keeps the pool busy without ever oversubscribing.
//
// Determinism: a fault's detection flag depends only on that fault, the
// netlist, and the stimulus — never on which lane, batch, thread, or engine
// graded it — and workers write disjoint slices of one shared flag vector.
// Results are therefore bitwise-identical for every thread count, including
// 1, and for every engine.
#pragma once

#include <deque>
#include <functional>

#include "fault/engine.hpp"
#include "fault/sim.hpp"
#include "fault/sim_detail.hpp"
#include "fault/thread_pool.hpp"

namespace sbst::fault {

struct SimOptions {
  /// Worker threads (including the calling thread). 0 = auto: SBST_THREADS
  /// env var if set, else std::thread::hardware_concurrency(). Ignored when
  /// `pool` is set.
  unsigned num_threads = 0;
  /// Pack 63 faults + the good machine into the 64 bit-lanes per eval() for
  /// combinational grading (detection flags are identical either way).
  bool lane_parallel = true;
  /// Evaluation engine (detection flags are identical for every choice).
  /// Defaults to the event-driven compiled engine, overridable via the
  /// SBST_ENGINE environment variable.
  Engine engine = default_engine();
  /// Lane-block width in 64-bit words for the compiled engines: 4 packs 255
  /// faults + the good machine per lane-parallel eval(). 0 = default_lanes()
  /// (SBST_LANES env var, else 4). Detection flags are identical for every
  /// width; the reference engine ignores it.
  unsigned lanes = 0;
  /// Netlist-compile optimization passes (const prop, inverter fusion, dead
  /// sweep) when no pre-compiled netlist is lent in: 1 = on, 0 = off, -1 =
  /// default_netlist_opt() (SBST_NETLIST_OPT env var, else on). Ignored when
  /// `compiled` is set.
  int netlist_opt = -1;
  /// Externally owned worker pool; when set, grading runs on it instead of
  /// constructing a per-call pool. Must not currently be executing a
  /// run_static batch (the pool is not reentrant).
  ThreadPool* pool = nullptr;
  /// Pre-compiled netlist for the compiled engines; must be compiled from
  /// the netlist being graded. nullptr = compile per call.
  const netlist::CompiledNetlist* compiled = nullptr;
  /// Precomputed fanin-cone prefilter matching the observe set, indexed per
  /// gate. nullptr = compute per call (compiled engines only).
  const std::uint8_t* reach = nullptr;
  /// Persistent artifact store probed (and written back) when no
  /// pre-compiled netlist is lent in; detection flags are identical with it
  /// set or not. nullptr = compile from scratch per call.
  store::ArtifactStore* store = nullptr;
};

/// Deferred fault-grading work: each add_*() call initializes its
/// CoverageResult (total + zeroed flags) and appends chunk tasks that grade
/// disjoint fault slices into it. Tasks from different gradings are
/// independent (disjoint flag slices, private evaluators over shared
/// immutable contexts) and may execute in any order or concurrently.
///
/// Lifetime: every EngineContext, fault list, stimulus, and CoverageResult
/// passed in must outlive run(). Callers recount() each CoverageResult after
/// run() — the flags are the single source of truth.
class GradingPlan {
 public:
  /// Combinational grading of `faults` against `patterns` (lane-packed or
  /// block PPSFP). Block scheduling precomputes the fault-free responses
  /// eagerly (one pass, on the calling thread).
  void add_comb(const EngineContext& ctx, const std::vector<Fault>& faults,
                const PatternSet& patterns, bool lane_parallel,
                CoverageResult& out);

  /// Sequential grading of `faults` against the clocked `stimulus`.
  void add_seq(const EngineContext& ctx, const std::vector<Fault>& faults,
               const SeqStimulus& stimulus, CoverageResult& out);

  /// Arbitrary extra task scheduled alongside the grading chunks (e.g. a
  /// standalone routine execution). Must only touch state disjoint from
  /// every other task's.
  void add_task(std::function<void()> task) {
    tasks_.push_back(std::move(task));
  }

  std::size_t size() const { return tasks_.size(); }

  /// Executes every queued task on `pool` (inline for a pool of size 1) and
  /// clears the plan. Blocks until all tasks are done. A throwing task does
  /// not stop the batch; the lowest-index captured exception is rethrown
  /// after every task has run.
  void run(ThreadPool& pool);

  /// Like run() but returns captured task failures (indexed in add order)
  /// instead of rethrowing, so campaign layers can degrade individual
  /// faults to infra_error while the rest of the batch stands.
  std::vector<ThreadPool::TaskFailure> run_capture(ThreadPool& pool);

 private:
  std::vector<std::function<void()>> tasks_;
  // Fault-free responses for block-scheduled gradings; deque keeps the
  // references captured by queued tasks stable.
  std::deque<std::vector<std::vector<std::uint64_t>>> good_storage_;
  // Reference-evaluator baselines for transition gradings (same stable-
  // reference contract as good_storage_).
  std::deque<detail::TransitionBaseline> transition_storage_;
};

CoverageResult simulate_comb_parallel(const netlist::Netlist& nl,
                                      const std::vector<Fault>& faults,
                                      const PatternSet& patterns,
                                      const ObserveSet& observe = {},
                                      const SimOptions& options = {});

CoverageResult simulate_seq_parallel(const netlist::Netlist& nl,
                                     const std::vector<Fault>& faults,
                                     const SeqStimulus& stimulus,
                                     const ObserveSet& observe = {},
                                     const SimOptions& options = {});

}  // namespace sbst::fault
