// Parallel fault-simulation engines: PPSFP lane packing + a fault-partitioned
// thread pool.
//
// Both engines grade the same contract as sim.hpp and are cross-checked
// against those oracles by the differential tests in
// tests/test_fault_parallel.cpp:
//
//  * simulate_comb_parallel: combinational grading. With
//    SimOptions::lane_parallel the evaluator's 64 bit-lanes carry the good
//    machine (lane 0) plus 63 faulty machines per eval() — the same packing
//    simulate_seq uses — so one pass over the pattern set grades 63 faults;
//    without it, each worker runs the block-at-a-time PPSFP of simulate_comb
//    over its fault slice against precomputed fault-free responses.
//  * simulate_seq_parallel: sequential grading; workers run simulate_seq's
//    63-faults-per-batch loop over disjoint fault slices.
//
// Both compose with the evaluation engines in engine.hpp: with a compiled
// engine the netlist is compiled once and every worker runs its own
// CompiledEvaluator over the shared immutable program.
//
// Determinism: a fault's detection flag depends only on that fault, the
// netlist, and the stimulus — never on which lane, batch, thread, or engine
// graded it — and workers write disjoint slices of one shared flag vector.
// Results are therefore bitwise-identical for every thread count, including
// 1, and for every engine.
#pragma once

#include "fault/engine.hpp"
#include "fault/sim.hpp"
#include "fault/thread_pool.hpp"

namespace sbst::fault {

struct SimOptions {
  /// Worker threads (including the calling thread). 0 = auto: SBST_THREADS
  /// env var if set, else std::thread::hardware_concurrency().
  unsigned num_threads = 0;
  /// Pack 63 faults + the good machine into the 64 bit-lanes per eval() for
  /// combinational grading (detection flags are identical either way).
  bool lane_parallel = true;
  /// Evaluation engine (detection flags are identical for every choice).
  /// Defaults to the event-driven compiled engine, overridable via the
  /// SBST_ENGINE environment variable.
  Engine engine = default_engine();
};

CoverageResult simulate_comb_parallel(const netlist::Netlist& nl,
                                      const std::vector<Fault>& faults,
                                      const PatternSet& patterns,
                                      const ObserveSet& observe = {},
                                      const SimOptions& options = {});

CoverageResult simulate_seq_parallel(const netlist::Netlist& nl,
                                     const std::vector<Fault>& faults,
                                     const SeqStimulus& stimulus,
                                     const ObserveSet& observe = {},
                                     const SimOptions& options = {});

}  // namespace sbst::fault
