// Fixed-size worker pool for fault-partitioned simulation.
//
// The pool hands out task indices with static striding: worker w executes
// tasks w, w + size(), w + 2*size(), ...  The calling thread participates as
// worker 0, so a pool of size 1 spawns no threads at all and runs the tasks
// inline — handy both for determinism tests and for small fault lists where
// thread startup would dominate.
//
// Determinism contract: tasks must write only to disjoint data (the fault
// simulators give each task a disjoint slice of `detected_flags`), so the
// merged result needs no locks and is bitwise-identical for any pool size.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sbst::fault {

/// Resolves a requested worker count: a positive value is used as-is; 0 means
/// "auto" — the SBST_THREADS environment variable if set to a positive
/// integer, else std::thread::hardware_concurrency() (min 1).
unsigned resolve_thread_count(unsigned requested);

class ThreadPool {
 public:
  /// Total workers including the calling thread; clamped to >= 1.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// An exception captured from one pool task: `task` is the index fn was
  /// called with, `error` the exception it threw.
  struct TaskFailure {
    std::size_t task = 0;
    std::exception_ptr error;
  };

  /// Runs fn(task) for every task in [0, count) and blocks until all are
  /// done. Tasks are assigned statically by stride (worker w gets tasks
  /// w, w + size(), ...). A throwing task cannot poison the pool: the
  /// exception is captured, every other task still runs, and the lowest-
  /// index captured exception is rethrown after the batch completes — the
  /// same one for any pool size, so error reporting stays deterministic.
  void run_static(std::size_t count,
                  const std::function<void(std::size_t)>& fn);

  /// Like run_static but never throws on task failure: returns every
  /// captured exception sorted by task index (empty when all tasks
  /// succeeded). The campaign layer uses this to degrade single faults to
  /// infra_error instead of aborting the whole batch.
  std::vector<TaskFailure> run_static_capture(
      std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(unsigned worker_index);
  void run_stride(unsigned worker_index);

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  std::size_t task_count_ = 0;
  const std::function<void(std::size_t)>* task_fn_ = nullptr;
  unsigned pending_workers_ = 0;
  bool stopping_ = false;
  std::mutex failure_mutex_;
  std::vector<TaskFailure> failures_;
  std::vector<std::thread> workers_;
};

}  // namespace sbst::fault
