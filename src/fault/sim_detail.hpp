// Helpers shared by the serial (sim.cpp) and parallel (sim_parallel.cpp)
// fault-simulation engines. Internal to src/fault.
//
// The grading loops are templated on the evaluator type so every simulator
// runs unchanged on the reference Evaluator, the compiled full-sweep
// evaluator, and the event-driven evaluator (see engine.hpp). They follow a
// single-evaluator discipline — good-machine pass, then per fault
// inject / eval / observe / clear_faults — which the event-driven engine
// turns into one fanout-cone propagation plus an O(touched) revert per
// fault. `reach` (nullable) is the output-cone prefilter: a fault whose
// site cannot structurally reach the observe set is skipped, which cannot
// change its detection flag (it would never be detected anyway).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "fault/fault.hpp"
#include "fault/pattern.hpp"
#include "netlist/compiled.hpp"
#include "netlist/eval.hpp"
#include "netlist/netlist.hpp"

namespace sbst::fault {

using ObserveSet = std::vector<netlist::NetId>;

namespace detail {

/// Empty observe set -> all declared outputs; throws if the netlist has none.
ObserveSet resolve_observe(const netlist::Netlist& nl,
                           const ObserveSet& observe);

void require_combinational(const netlist::Netlist& nl, const char* who);

/// Loads pattern block `b` (64 packed patterns) into the evaluator's inputs.
template <class Ev>
void apply_block(Ev& ev, const PatternSet& patterns, std::size_t b) {
  const auto& words = patterns.block(b);
  const auto& inputs = patterns.netlist().inputs();
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    ev.set_input_word(inputs[k], words[k]);
  }
}

/// Loads pattern blocks [b0, b0 + Ev::kWords) into the words of the
/// evaluator's lane blocks — 64 * kWords patterns per eval. Trailing
/// missing blocks are zero-padded (their valid-lane masks are 0, so the
/// padding never grades anything).
template <class Ev>
void apply_block_group(Ev& ev, const PatternSet& patterns, std::size_t b0) {
  constexpr unsigned W = Ev::kWords;
  const auto& inputs = patterns.netlist().inputs();
  const std::size_t n_blocks = patterns.block_count();
  std::uint64_t block[W];
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    for (unsigned w = 0; w < W; ++w) {
      block[w] = b0 + w < n_blocks ? patterns.block(b0 + w)[k] : 0;
    }
    ev.set_input_block(inputs[k], block);
  }
}

/// Loads the single pattern `p` broadcast into all 64 lanes.
template <class Ev>
void apply_pattern_broadcast(Ev& ev, const PatternSet& patterns,
                             std::size_t p) {
  const auto& words = patterns.block(p / 64);
  const unsigned lane = p % 64;
  const auto& inputs = patterns.netlist().inputs();
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    ev.set_input(inputs[k], (words[k] >> lane) & 1u);
  }
  // The whole stimulus just changed; a worklist pass would rediscover a
  // netlist-wide frontier gate by gate, so ask for one level-major sweep.
  ev.request_full_eval();
}

/// One fault at a time, one broadcast pattern at a time (the serial oracle's
/// loop structure).
template <class Ev>
void grade_serial(Ev& ev, const std::vector<Fault>& faults,
                  const PatternSet& patterns, const ObserveSet& observe,
                  const std::uint8_t* reach, std::uint8_t* flags) {
  std::vector<std::uint64_t> good_out(observe.size());
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    apply_pattern_broadcast(ev, patterns, p);
    ev.eval();
    for (std::size_t o = 0; o < observe.size(); ++o) {
      good_out[o] = ev.value(observe[o]);
    }
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (flags[f]) continue;
      if (reach && !reach[faults[f].site.gate]) continue;
      ev.inject(faults[f].site, faults[f].stuck_value, ~std::uint64_t{0});
      ev.eval();
      for (std::size_t o = 0; o < observe.size(); ++o) {
        if ((good_out[o] ^ ev.value(observe[o])) & 1u) {
          flags[f] = 1;
          break;
        }
      }
      ev.clear_faults();
    }
  }
}

/// PPSFP over all blocks, Ev::kWords blocks per eval: good pass per block
/// group, then one faulty eval per undetected fault with fault dropping.
/// Detection flags are independent of kWords — grouping only changes how
/// many patterns each eval carries, never whether some pattern detects a
/// fault.
template <class Ev>
void grade_comb(Ev& ev, const std::vector<Fault>& faults,
                const PatternSet& patterns, const ObserveSet& observe,
                const std::uint8_t* reach, std::uint8_t* flags) {
  constexpr unsigned W = Ev::kWords;
  const std::size_t n_blocks = patterns.block_count();
  std::vector<std::uint64_t> good_out(observe.size() * W);
  std::uint64_t valid[W];
  for (std::size_t b = 0; b < n_blocks; b += W) {
    for (unsigned w = 0; w < W; ++w) {
      valid[w] = b + w < n_blocks ? patterns.valid_lanes(b + w) : 0;
    }
    apply_block_group(ev, patterns, b);
    ev.eval();
    for (std::size_t o = 0; o < observe.size(); ++o) {
      for (unsigned w = 0; w < W; ++w) {
        good_out[o * W + w] = ev.value_word(observe[o], w);
      }
    }
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (flags[f]) continue;  // fault dropping
      if (reach && !reach[faults[f].site.gate]) continue;
      ev.inject_broadcast(faults[f].site, faults[f].stuck_value);
      ev.eval();
      for (std::size_t o = 0; o < observe.size() && !flags[f]; ++o) {
        for (unsigned w = 0; w < W; ++w) {
          if ((good_out[o * W + w] ^ ev.value_word(observe[o], w)) &
              valid[w]) {
            flags[f] = 1;
            break;
          }
        }
      }
      ev.clear_faults();
    }
  }
}

/// PPSFP over faults [begin, end) against fault-free responses precomputed
/// once for all workers (the threaded block engine's inner loop).
template <class Ev>
void grade_comb_blocks(
    Ev& ev, const std::vector<Fault>& faults, std::size_t begin,
    std::size_t end, const PatternSet& patterns, const ObserveSet& observe,
    const std::vector<std::vector<std::uint64_t>>& good_out,
    const std::uint8_t* reach, std::uint8_t* flags) {
  constexpr unsigned W = Ev::kWords;
  const std::size_t n_blocks = patterns.block_count();
  std::size_t undetected = end - begin;
  std::uint64_t valid[W];
  for (std::size_t b = 0; b < n_blocks && undetected > 0; b += W) {
    for (unsigned w = 0; w < W; ++w) {
      valid[w] = b + w < n_blocks ? patterns.valid_lanes(b + w) : 0;
    }
    apply_block_group(ev, patterns, b);
    ev.eval();  // good-machine baseline (the event engine branches from it)
    for (std::size_t f = begin; f < end; ++f) {
      if (flags[f]) continue;  // fault dropping
      if (reach && !reach[faults[f].site.gate]) continue;
      ev.inject_broadcast(faults[f].site, faults[f].stuck_value);
      ev.eval();
      bool det = false;
      for (std::size_t o = 0; o < observe.size() && !det; ++o) {
        for (unsigned w = 0; w < W; ++w) {
          if (valid[w] == 0) continue;  // padded word: no good_out row
          if ((good_out[b + w][o] ^ ev.value_word(observe[o], w)) &
              valid[w]) {
            det = true;
            break;
          }
        }
      }
      if (det) {
        flags[f] = 1;
        --undetected;
      }
      ev.clear_faults();
    }
  }
}

/// Lane-packed grading of faults [begin, end): lane 0 is the fault-free
/// machine, lanes 1..63 carry faulty machines, each pattern is broadcast
/// into all lanes. Batch-level fault dropping: a batch stops consuming
/// patterns once every injected lane has been detected.
template <class Ev>
void grade_comb_lanes(Ev& ev, const std::vector<Fault>& faults,
                      std::size_t begin, std::size_t end,
                      const PatternSet& patterns, const ObserveSet& observe,
                      const std::uint8_t* reach, std::uint8_t* flags) {
  constexpr unsigned W = Ev::kWords;
  constexpr std::size_t kFaultLanes = 64 * W - 1;  // lane 0 = good machine
  for (std::size_t base = begin; base < end; base += kFaultLanes) {
    const std::size_t batch = std::min<std::size_t>(kFaultLanes, end - base);
    ev.clear_faults();
    std::uint64_t batch_lanes[W] = {};
    for (std::size_t j = 0; j < batch; ++j) {
      const Fault& f = faults[base + j];
      if (reach && !reach[f.site.gate]) continue;
      ev.inject_lane(f.site, f.stuck_value, static_cast<unsigned>(j + 1));
      batch_lanes[(j + 1) / 64] |= std::uint64_t{1} << ((j + 1) % 64);
    }
    std::uint64_t detected[W] = {};
    auto all_done = [&] {
      for (unsigned w = 0; w < W; ++w) {
        if ((detected[w] & batch_lanes[w]) != batch_lanes[w]) return false;
      }
      return true;
    };
    for (std::size_t p = 0; p < patterns.size() && !all_done(); ++p) {
      apply_pattern_broadcast(ev, patterns, p);
      ev.eval();
      for (netlist::NetId out : observe) {
        for (unsigned w = 0; w < W; ++w) {
          detected[w] |= ev.diff_word(out, w, 0);
        }
      }
    }
    for (std::size_t j = 0; j < batch; ++j) {
      if ((detected[(j + 1) / 64] >> ((j + 1) % 64)) & 1u) {
        flags[base + j] = 1;
      }
    }
  }
}

/// simulate_seq's 63-faults-per-batch parallel-fault loop over [begin, end).
template <class Ev>
void grade_seq_batches(Ev& ev, const std::vector<Fault>& faults,
                       std::size_t begin, std::size_t end,
                       const SeqStimulus& stimulus, const ObserveSet& observe,
                       const std::uint8_t* reach, std::uint8_t* flags) {
  constexpr unsigned W = Ev::kWords;
  constexpr std::size_t kFaultLanes = 64 * W - 1;  // lane 0 = good machine
  const auto& inputs = ev.netlist().inputs();
  for (std::size_t base = begin; base < end; base += kFaultLanes) {
    const std::size_t batch = std::min<std::size_t>(kFaultLanes, end - base);
    ev.clear_faults();
    ev.reset_state(false);
    for (std::size_t j = 0; j < batch; ++j) {
      const Fault& f = faults[base + j];
      if (reach && !reach[f.site.gate]) continue;
      ev.inject_lane(f.site, f.stuck_value, static_cast<unsigned>(j + 1));
    }
    std::uint64_t detected[W] = {};
    for (std::size_t c = 0; c < stimulus.size(); ++c) {
      for (std::size_t k = 0; k < inputs.size(); ++k) {
        ev.set_input(inputs[k], stimulus.input_bit(c, k));
      }
      // Every input changes each cycle, so the frontier is netlist-wide.
      ev.request_full_eval();
      ev.step();
      if (stimulus.observed(c)) {
        for (netlist::NetId out : observe) {
          for (unsigned w = 0; w < W; ++w) {
            detected[w] |= ev.diff_word(out, w, 0);
          }
        }
      }
    }
    for (std::size_t j = 0; j < batch; ++j) {
      if ((detected[(j + 1) / 64] >> ((j + 1) % 64)) & 1u) {
        flags[base + j] = 1;
      }
    }
  }
}

// ---- fault-model routing ---------------------------------------------------

/// The (single) model of a homogeneous fault list; throws std::invalid_argument
/// on mixed lists. Empty lists grade as stuck-at (all paths no-op anyway).
FaultModel list_model(const std::vector<Fault>& faults);

// ---- transition grading ----------------------------------------------------

/// Fault-free per-block net values and observe-point responses, precomputed
/// ONCE with the reference Evaluator. Transition grading needs the good value
/// of the faulted LINE itself for launch/capture pairing, and optimized
/// compiled evaluators cannot provide it: dead-sweep liveness is computed on
/// post-fusion edges, so a fused-away gate's value array is stale.
struct TransitionBaseline {
  std::vector<std::vector<std::uint64_t>> vals;  // [block][net]
  std::vector<std::vector<std::uint64_t>> out;   // [block][observe index]
};

TransitionBaseline make_transition_baseline(const netlist::Netlist& nl,
                                            const PatternSet& patterns,
                                            const ObserveSet& observe);

/// Transition grading of faults [begin, end) against a precomputed baseline,
/// block-major so the event engine pays one stimulus propagation per block
/// group. Bitwise-identical flags to the legacy simulate_transition: per
/// block, launch lanes carry the fault-free value sv, capture lanes carry
/// !sv AND the equivalent stuck-at-sv is observed; a fault is detected by a
/// launch at global pattern L and capture at L + 1 (lane 63 chains into lane
/// 0 of the next block, and across group words, via prev_msb).
template <class Ev>
void grade_transition_blocks(Ev& ev, const std::vector<Fault>& faults,
                             std::size_t begin, std::size_t end,
                             const PatternSet& patterns,
                             const ObserveSet& observe,
                             const TransitionBaseline& baseline,
                             const std::uint8_t* reach, std::uint8_t* flags) {
  constexpr unsigned W = Ev::kWords;
  const netlist::Netlist& nl = patterns.netlist();
  const std::size_t n_blocks = patterns.block_count();
  if (patterns.size() < 2) return;

  // Per-fault cross-block state: the launch bit of the previous block's
  // lane 63 (blocks are visited strictly in order, so one word suffices).
  std::vector<std::uint8_t> prev_msb(end - begin, 0);
  std::size_t undetected = end - begin;
  std::uint64_t valid[W];
  for (std::size_t b = 0; b < n_blocks && undetected > 0; b += W) {
    for (unsigned w = 0; w < W; ++w) {
      valid[w] = b + w < n_blocks ? patterns.valid_lanes(b + w) : 0;
    }
    apply_block_group(ev, patterns, b);
    ev.eval();  // good-machine baseline (the event engine branches from it)
    for (std::size_t f = begin; f < end; ++f) {
      if (flags[f]) continue;  // fault dropping
      const Fault& fault = faults[f];
      const bool sv = fault.stuck_value;  // captured (faulty) value
      const netlist::NetId line =
          fault.site.is_output() ? fault.site.gate
                                 : nl.gate(fault.site.gate).in[fault.site.pin];
      std::uint64_t launch[W], capture_value[W];
      std::uint64_t any_capture = 0;
      for (unsigned w = 0; w < W; ++w) {
        const std::uint64_t lv =
            valid[w] ? baseline.vals[b + w][line] : 0;
        launch[w] = (sv ? lv : ~lv) & valid[w];
        capture_value[w] = (sv ? ~lv : lv) & valid[w];
        any_capture |= capture_value[w];
      }
      std::uint64_t detect[W] = {};
      const bool reachable = !reach || reach[fault.site.gate];
      if (any_capture != 0 && reachable) {
        ev.inject_broadcast(fault.site, sv);
        ev.eval();
        for (std::size_t o = 0; o < observe.size(); ++o) {
          for (unsigned w = 0; w < W; ++w) {
            if (valid[w] == 0) continue;  // padded word: no baseline row
            detect[w] |=
                baseline.out[b + w][o] ^ ev.value_word(observe[o], w);
          }
        }
        ev.clear_faults();
      }
      std::uint8_t msb = prev_msb[f - begin];
      for (unsigned w = 0; w < W; ++w) {
        const std::uint64_t capture = capture_value[w] & detect[w];
        if (((launch[w] << 1) & capture) || (msb && (capture & 1u))) {
          flags[f] = 1;
        }
        msb = static_cast<std::uint8_t>((launch[w] >> 63) & 1u);
      }
      prev_msb[f - begin] = msb;
      if (flags[f]) --undetected;
    }
  }
}

// ---- windowed grading (transient SEU / intermittent) -----------------------

/// PPSFP windowed grading, inline good pass (the serial simulate_comb shape):
/// pattern p grades a fault only in lanes where its activation stream is on
/// at global index p.
template <class Ev>
void grade_windowed(Ev& ev, const std::vector<Fault>& faults,
                    const PatternSet& patterns, const ObserveSet& observe,
                    const std::uint8_t* reach, std::uint8_t* flags) {
  constexpr unsigned W = Ev::kWords;
  const std::size_t n_blocks = patterns.block_count();
  std::vector<std::uint64_t> good_out(observe.size() * W);
  std::vector<std::uint64_t> keys(faults.size());
  for (std::size_t f = 0; f < faults.size(); ++f) {
    keys[f] = fault_stream_key(faults[f]);
  }
  std::uint64_t valid[W];
  for (std::size_t b = 0; b < n_blocks; b += W) {
    for (unsigned w = 0; w < W; ++w) {
      valid[w] = b + w < n_blocks ? patterns.valid_lanes(b + w) : 0;
    }
    apply_block_group(ev, patterns, b);
    ev.eval();
    for (std::size_t o = 0; o < observe.size(); ++o) {
      for (unsigned w = 0; w < W; ++w) {
        good_out[o * W + w] = ev.value_word(observe[o], w);
      }
    }
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (flags[f]) continue;  // fault dropping
      if (reach && !reach[faults[f].site.gate]) continue;
      std::uint64_t act[W];
      std::uint64_t any = 0;
      for (unsigned w = 0; w < W; ++w) {
        act[w] =
            fault_active_word(keys[f], faults[f].model, b + w) & valid[w];
        any |= act[w];
      }
      if (any == 0) continue;  // fault dormant for this whole block group
      ev.inject_block(faults[f].site, faults[f].stuck_value, act);
      ev.eval();
      for (std::size_t o = 0; o < observe.size() && !flags[f]; ++o) {
        for (unsigned w = 0; w < W; ++w) {
          if ((good_out[o * W + w] ^ ev.value_word(observe[o], w)) &
              valid[w]) {
            flags[f] = 1;
            break;
          }
        }
      }
      ev.clear_faults();
    }
  }
}

/// Windowed grading of faults [begin, end) against fault-free responses
/// precomputed once for all workers (the threaded block engine's shape).
template <class Ev>
void grade_windowed_blocks(
    Ev& ev, const std::vector<Fault>& faults, std::size_t begin,
    std::size_t end, const PatternSet& patterns, const ObserveSet& observe,
    const std::vector<std::vector<std::uint64_t>>& good_out,
    const std::uint8_t* reach, std::uint8_t* flags) {
  constexpr unsigned W = Ev::kWords;
  const std::size_t n_blocks = patterns.block_count();
  std::size_t undetected = end - begin;
  std::vector<std::uint64_t> keys(end - begin);
  for (std::size_t f = begin; f < end; ++f) {
    keys[f - begin] = fault_stream_key(faults[f]);
  }
  std::uint64_t valid[W];
  for (std::size_t b = 0; b < n_blocks && undetected > 0; b += W) {
    for (unsigned w = 0; w < W; ++w) {
      valid[w] = b + w < n_blocks ? patterns.valid_lanes(b + w) : 0;
    }
    apply_block_group(ev, patterns, b);
    ev.eval();  // good-machine baseline (the event engine branches from it)
    for (std::size_t f = begin; f < end; ++f) {
      if (flags[f]) continue;  // fault dropping
      if (reach && !reach[faults[f].site.gate]) continue;
      std::uint64_t act[W];
      std::uint64_t any = 0;
      for (unsigned w = 0; w < W; ++w) {
        act[w] = fault_active_word(keys[f - begin], faults[f].model, b + w) &
                 valid[w];
        any |= act[w];
      }
      if (any == 0) continue;  // fault dormant for this whole block group
      ev.inject_block(faults[f].site, faults[f].stuck_value, act);
      ev.eval();
      bool det = false;
      for (std::size_t o = 0; o < observe.size() && !det; ++o) {
        for (unsigned w = 0; w < W; ++w) {
          if (valid[w] == 0) continue;  // padded word: no good_out row
          if ((good_out[b + w][o] ^ ev.value_word(observe[o], w)) &
              valid[w]) {
            det = true;
            break;
          }
        }
      }
      if (det) {
        flags[f] = 1;
        --undetected;
      }
      ev.clear_faults();
    }
  }
}

/// Lane-packed windowed grading of faults [begin, end): lane 0 is the
/// fault-free machine, lanes 1.. carry faulty machines whose forces are
/// toggled per pattern as their activation streams switch on/off (the
/// release API keeps other lanes' forces intact). A fault's detection
/// depends only on its own lane, so flags are independent of batch
/// composition — chunk boundaries, thread count, and lane width all wash
/// out.
template <class Ev>
void grade_windowed_lanes(Ev& ev, const std::vector<Fault>& faults,
                          std::size_t begin, std::size_t end,
                          const PatternSet& patterns,
                          const ObserveSet& observe, const std::uint8_t* reach,
                          std::uint8_t* flags) {
  constexpr unsigned W = Ev::kWords;
  constexpr std::size_t kFaultLanes = 64 * W - 1;  // lane 0 = good machine
  std::vector<std::uint64_t> keys(end - begin);
  for (std::size_t f = begin; f < end; ++f) {
    keys[f - begin] = fault_stream_key(faults[f]);
  }
  std::vector<std::uint8_t> active(kFaultLanes);
  for (std::size_t base = begin; base < end; base += kFaultLanes) {
    const std::size_t batch = std::min<std::size_t>(kFaultLanes, end - base);
    ev.clear_faults();
    std::fill(active.begin(), active.begin() + batch, 0);
    std::uint64_t batch_lanes[W] = {};
    for (std::size_t j = 0; j < batch; ++j) {
      if (reach && !reach[faults[base + j].site.gate]) continue;
      batch_lanes[(j + 1) / 64] |= std::uint64_t{1} << ((j + 1) % 64);
    }
    std::uint64_t detected[W] = {};
    auto all_done = [&] {
      for (unsigned w = 0; w < W; ++w) {
        if ((detected[w] & batch_lanes[w]) != batch_lanes[w]) return false;
      }
      return true;
    };
    for (std::size_t p = 0; p < patterns.size() && !all_done(); ++p) {
      for (std::size_t j = 0; j < batch; ++j) {
        const Fault& f = faults[base + j];
        if (reach && !reach[f.site.gate]) continue;
        const bool on =
            fault_active(keys[base + j - begin], f.model, p);
        if (on == static_cast<bool>(active[j])) continue;
        if (on) {
          ev.inject_lane(f.site, f.stuck_value, static_cast<unsigned>(j + 1));
        } else {
          ev.release_lane(f.site, static_cast<unsigned>(j + 1));
        }
        active[j] = on;
      }
      apply_pattern_broadcast(ev, patterns, p);
      ev.eval();
      for (netlist::NetId out : observe) {
        for (unsigned w = 0; w < W; ++w) {
          detected[w] |= ev.diff_word(out, w, 0);
        }
      }
    }
    for (std::size_t j = 0; j < batch; ++j) {
      if ((detected[(j + 1) / 64] >> ((j + 1) % 64)) & 1u) {
        flags[base + j] = 1;
      }
    }
  }
}

/// Parallel-fault sequential grading with per-cycle activation toggling.
/// Deactivating a lane's force mid-run releases only the FORCE — any state
/// divergence the active window seeded persists in that lane's flip-flops,
/// which is exactly the transient-SEU / intermittent semantics: a one-cycle
/// flip can be caught many cycles later.
template <class Ev>
void grade_windowed_seq_batches(Ev& ev, const std::vector<Fault>& faults,
                                std::size_t begin, std::size_t end,
                                const SeqStimulus& stimulus,
                                const ObserveSet& observe,
                                const std::uint8_t* reach,
                                std::uint8_t* flags) {
  constexpr unsigned W = Ev::kWords;
  constexpr std::size_t kFaultLanes = 64 * W - 1;  // lane 0 = good machine
  const auto& inputs = ev.netlist().inputs();
  std::vector<std::uint64_t> keys(end - begin);
  for (std::size_t f = begin; f < end; ++f) {
    keys[f - begin] = fault_stream_key(faults[f]);
  }
  std::vector<std::uint8_t> active(kFaultLanes);
  for (std::size_t base = begin; base < end; base += kFaultLanes) {
    const std::size_t batch = std::min<std::size_t>(kFaultLanes, end - base);
    ev.clear_faults();
    ev.reset_state(false);
    std::fill(active.begin(), active.begin() + batch, 0);
    std::uint64_t detected[W] = {};
    for (std::size_t c = 0; c < stimulus.size(); ++c) {
      for (std::size_t j = 0; j < batch; ++j) {
        const Fault& f = faults[base + j];
        if (reach && !reach[f.site.gate]) continue;
        const bool on = fault_active(keys[base + j - begin], f.model, c);
        if (on == static_cast<bool>(active[j])) continue;
        if (on) {
          ev.inject_lane(f.site, f.stuck_value, static_cast<unsigned>(j + 1));
        } else {
          ev.release_lane(f.site, static_cast<unsigned>(j + 1));
        }
        active[j] = on;
      }
      for (std::size_t k = 0; k < inputs.size(); ++k) {
        ev.set_input(inputs[k], stimulus.input_bit(c, k));
      }
      // Every input changes each cycle, so the frontier is netlist-wide.
      ev.request_full_eval();
      ev.step();
      if (stimulus.observed(c)) {
        for (netlist::NetId out : observe) {
          for (unsigned w = 0; w < W; ++w) {
            detected[w] |= ev.diff_word(out, w, 0);
          }
        }
      }
    }
    for (std::size_t j = 0; j < batch; ++j) {
      if ((detected[(j + 1) / 64] >> ((j + 1) % 64)) & 1u) {
        flags[base + j] = 1;
      }
    }
  }
}

/// Serial windowed oracle: the grade_serial loop with activation gating — a
/// dormant fault is simply not injected for that pattern.
template <class Ev>
void grade_windowed_serial(Ev& ev, const std::vector<Fault>& faults,
                           const PatternSet& patterns,
                           const ObserveSet& observe,
                           const std::uint8_t* reach, std::uint8_t* flags) {
  std::vector<std::uint64_t> good_out(observe.size());
  std::vector<std::uint64_t> keys(faults.size());
  for (std::size_t f = 0; f < faults.size(); ++f) {
    keys[f] = fault_stream_key(faults[f]);
  }
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    apply_pattern_broadcast(ev, patterns, p);
    ev.eval();
    for (std::size_t o = 0; o < observe.size(); ++o) {
      good_out[o] = ev.value(observe[o]);
    }
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (flags[f]) continue;
      if (reach && !reach[faults[f].site.gate]) continue;
      if (!fault_active(keys[f], faults[f].model, p)) continue;
      ev.inject(faults[f].site, faults[f].stuck_value, ~std::uint64_t{0});
      ev.eval();
      for (std::size_t o = 0; o < observe.size(); ++o) {
        if ((good_out[o] ^ ev.value(observe[o])) & 1u) {
          flags[f] = 1;
          break;
        }
      }
      ev.clear_faults();
    }
  }
}

}  // namespace detail
}  // namespace sbst::fault
