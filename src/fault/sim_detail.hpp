// Helpers shared by the serial (sim.cpp) and parallel (sim_parallel.cpp)
// fault-simulation engines. Internal to src/fault.
#pragma once

#include <cstddef>

#include "fault/pattern.hpp"
#include "netlist/eval.hpp"
#include "netlist/netlist.hpp"

namespace sbst::fault {

using ObserveSet = std::vector<netlist::NetId>;

namespace detail {

/// Empty observe set -> all declared outputs; throws if the netlist has none.
ObserveSet resolve_observe(const netlist::Netlist& nl,
                           const ObserveSet& observe);

void require_combinational(const netlist::Netlist& nl, const char* who);

/// Loads pattern block `b` (64 packed patterns) into the evaluator's inputs.
void apply_block(netlist::Evaluator& ev, const PatternSet& patterns,
                 std::size_t b);

/// Loads the single pattern `p` broadcast into all 64 lanes.
void apply_pattern_broadcast(netlist::Evaluator& ev,
                             const PatternSet& patterns, std::size_t p);

}  // namespace detail
}  // namespace sbst::fault
