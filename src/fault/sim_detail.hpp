// Helpers shared by the serial (sim.cpp) and parallel (sim_parallel.cpp)
// fault-simulation engines. Internal to src/fault.
//
// The grading loops are templated on the evaluator type so every simulator
// runs unchanged on the reference Evaluator, the compiled full-sweep
// evaluator, and the event-driven evaluator (see engine.hpp). They follow a
// single-evaluator discipline — good-machine pass, then per fault
// inject / eval / observe / clear_faults — which the event-driven engine
// turns into one fanout-cone propagation plus an O(touched) revert per
// fault. `reach` (nullable) is the output-cone prefilter: a fault whose
// site cannot structurally reach the observe set is skipped, which cannot
// change its detection flag (it would never be detected anyway).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "fault/fault.hpp"
#include "fault/pattern.hpp"
#include "netlist/compiled.hpp"
#include "netlist/eval.hpp"
#include "netlist/netlist.hpp"

namespace sbst::fault {

using ObserveSet = std::vector<netlist::NetId>;

namespace detail {

/// Empty observe set -> all declared outputs; throws if the netlist has none.
ObserveSet resolve_observe(const netlist::Netlist& nl,
                           const ObserveSet& observe);

void require_combinational(const netlist::Netlist& nl, const char* who);

/// Loads pattern block `b` (64 packed patterns) into the evaluator's inputs.
template <class Ev>
void apply_block(Ev& ev, const PatternSet& patterns, std::size_t b) {
  const auto& words = patterns.block(b);
  const auto& inputs = patterns.netlist().inputs();
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    ev.set_input_word(inputs[k], words[k]);
  }
}

/// Loads pattern blocks [b0, b0 + Ev::kWords) into the words of the
/// evaluator's lane blocks — 64 * kWords patterns per eval. Trailing
/// missing blocks are zero-padded (their valid-lane masks are 0, so the
/// padding never grades anything).
template <class Ev>
void apply_block_group(Ev& ev, const PatternSet& patterns, std::size_t b0) {
  constexpr unsigned W = Ev::kWords;
  const auto& inputs = patterns.netlist().inputs();
  const std::size_t n_blocks = patterns.block_count();
  std::uint64_t block[W];
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    for (unsigned w = 0; w < W; ++w) {
      block[w] = b0 + w < n_blocks ? patterns.block(b0 + w)[k] : 0;
    }
    ev.set_input_block(inputs[k], block);
  }
}

/// Loads the single pattern `p` broadcast into all 64 lanes.
template <class Ev>
void apply_pattern_broadcast(Ev& ev, const PatternSet& patterns,
                             std::size_t p) {
  const auto& words = patterns.block(p / 64);
  const unsigned lane = p % 64;
  const auto& inputs = patterns.netlist().inputs();
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    ev.set_input(inputs[k], (words[k] >> lane) & 1u);
  }
  // The whole stimulus just changed; a worklist pass would rediscover a
  // netlist-wide frontier gate by gate, so ask for one level-major sweep.
  ev.request_full_eval();
}

/// One fault at a time, one broadcast pattern at a time (the serial oracle's
/// loop structure).
template <class Ev>
void grade_serial(Ev& ev, const std::vector<Fault>& faults,
                  const PatternSet& patterns, const ObserveSet& observe,
                  const std::uint8_t* reach, std::uint8_t* flags) {
  std::vector<std::uint64_t> good_out(observe.size());
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    apply_pattern_broadcast(ev, patterns, p);
    ev.eval();
    for (std::size_t o = 0; o < observe.size(); ++o) {
      good_out[o] = ev.value(observe[o]);
    }
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (flags[f]) continue;
      if (reach && !reach[faults[f].site.gate]) continue;
      ev.inject(faults[f].site, faults[f].stuck_value, ~std::uint64_t{0});
      ev.eval();
      for (std::size_t o = 0; o < observe.size(); ++o) {
        if ((good_out[o] ^ ev.value(observe[o])) & 1u) {
          flags[f] = 1;
          break;
        }
      }
      ev.clear_faults();
    }
  }
}

/// PPSFP over all blocks, Ev::kWords blocks per eval: good pass per block
/// group, then one faulty eval per undetected fault with fault dropping.
/// Detection flags are independent of kWords — grouping only changes how
/// many patterns each eval carries, never whether some pattern detects a
/// fault.
template <class Ev>
void grade_comb(Ev& ev, const std::vector<Fault>& faults,
                const PatternSet& patterns, const ObserveSet& observe,
                const std::uint8_t* reach, std::uint8_t* flags) {
  constexpr unsigned W = Ev::kWords;
  const std::size_t n_blocks = patterns.block_count();
  std::vector<std::uint64_t> good_out(observe.size() * W);
  std::uint64_t valid[W];
  for (std::size_t b = 0; b < n_blocks; b += W) {
    for (unsigned w = 0; w < W; ++w) {
      valid[w] = b + w < n_blocks ? patterns.valid_lanes(b + w) : 0;
    }
    apply_block_group(ev, patterns, b);
    ev.eval();
    for (std::size_t o = 0; o < observe.size(); ++o) {
      for (unsigned w = 0; w < W; ++w) {
        good_out[o * W + w] = ev.value_word(observe[o], w);
      }
    }
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (flags[f]) continue;  // fault dropping
      if (reach && !reach[faults[f].site.gate]) continue;
      ev.inject_broadcast(faults[f].site, faults[f].stuck_value);
      ev.eval();
      for (std::size_t o = 0; o < observe.size() && !flags[f]; ++o) {
        for (unsigned w = 0; w < W; ++w) {
          if ((good_out[o * W + w] ^ ev.value_word(observe[o], w)) &
              valid[w]) {
            flags[f] = 1;
            break;
          }
        }
      }
      ev.clear_faults();
    }
  }
}

/// PPSFP over faults [begin, end) against fault-free responses precomputed
/// once for all workers (the threaded block engine's inner loop).
template <class Ev>
void grade_comb_blocks(
    Ev& ev, const std::vector<Fault>& faults, std::size_t begin,
    std::size_t end, const PatternSet& patterns, const ObserveSet& observe,
    const std::vector<std::vector<std::uint64_t>>& good_out,
    const std::uint8_t* reach, std::uint8_t* flags) {
  constexpr unsigned W = Ev::kWords;
  const std::size_t n_blocks = patterns.block_count();
  std::size_t undetected = end - begin;
  std::uint64_t valid[W];
  for (std::size_t b = 0; b < n_blocks && undetected > 0; b += W) {
    for (unsigned w = 0; w < W; ++w) {
      valid[w] = b + w < n_blocks ? patterns.valid_lanes(b + w) : 0;
    }
    apply_block_group(ev, patterns, b);
    ev.eval();  // good-machine baseline (the event engine branches from it)
    for (std::size_t f = begin; f < end; ++f) {
      if (flags[f]) continue;  // fault dropping
      if (reach && !reach[faults[f].site.gate]) continue;
      ev.inject_broadcast(faults[f].site, faults[f].stuck_value);
      ev.eval();
      bool det = false;
      for (std::size_t o = 0; o < observe.size() && !det; ++o) {
        for (unsigned w = 0; w < W; ++w) {
          if (valid[w] == 0) continue;  // padded word: no good_out row
          if ((good_out[b + w][o] ^ ev.value_word(observe[o], w)) &
              valid[w]) {
            det = true;
            break;
          }
        }
      }
      if (det) {
        flags[f] = 1;
        --undetected;
      }
      ev.clear_faults();
    }
  }
}

/// Lane-packed grading of faults [begin, end): lane 0 is the fault-free
/// machine, lanes 1..63 carry faulty machines, each pattern is broadcast
/// into all lanes. Batch-level fault dropping: a batch stops consuming
/// patterns once every injected lane has been detected.
template <class Ev>
void grade_comb_lanes(Ev& ev, const std::vector<Fault>& faults,
                      std::size_t begin, std::size_t end,
                      const PatternSet& patterns, const ObserveSet& observe,
                      const std::uint8_t* reach, std::uint8_t* flags) {
  constexpr unsigned W = Ev::kWords;
  constexpr std::size_t kFaultLanes = 64 * W - 1;  // lane 0 = good machine
  for (std::size_t base = begin; base < end; base += kFaultLanes) {
    const std::size_t batch = std::min<std::size_t>(kFaultLanes, end - base);
    ev.clear_faults();
    std::uint64_t batch_lanes[W] = {};
    for (std::size_t j = 0; j < batch; ++j) {
      const Fault& f = faults[base + j];
      if (reach && !reach[f.site.gate]) continue;
      ev.inject_lane(f.site, f.stuck_value, static_cast<unsigned>(j + 1));
      batch_lanes[(j + 1) / 64] |= std::uint64_t{1} << ((j + 1) % 64);
    }
    std::uint64_t detected[W] = {};
    auto all_done = [&] {
      for (unsigned w = 0; w < W; ++w) {
        if ((detected[w] & batch_lanes[w]) != batch_lanes[w]) return false;
      }
      return true;
    };
    for (std::size_t p = 0; p < patterns.size() && !all_done(); ++p) {
      apply_pattern_broadcast(ev, patterns, p);
      ev.eval();
      for (netlist::NetId out : observe) {
        for (unsigned w = 0; w < W; ++w) {
          detected[w] |= ev.diff_word(out, w, 0);
        }
      }
    }
    for (std::size_t j = 0; j < batch; ++j) {
      if ((detected[(j + 1) / 64] >> ((j + 1) % 64)) & 1u) {
        flags[base + j] = 1;
      }
    }
  }
}

/// simulate_seq's 63-faults-per-batch parallel-fault loop over [begin, end).
template <class Ev>
void grade_seq_batches(Ev& ev, const std::vector<Fault>& faults,
                       std::size_t begin, std::size_t end,
                       const SeqStimulus& stimulus, const ObserveSet& observe,
                       const std::uint8_t* reach, std::uint8_t* flags) {
  constexpr unsigned W = Ev::kWords;
  constexpr std::size_t kFaultLanes = 64 * W - 1;  // lane 0 = good machine
  const auto& inputs = ev.netlist().inputs();
  for (std::size_t base = begin; base < end; base += kFaultLanes) {
    const std::size_t batch = std::min<std::size_t>(kFaultLanes, end - base);
    ev.clear_faults();
    ev.reset_state(false);
    for (std::size_t j = 0; j < batch; ++j) {
      const Fault& f = faults[base + j];
      if (reach && !reach[f.site.gate]) continue;
      ev.inject_lane(f.site, f.stuck_value, static_cast<unsigned>(j + 1));
    }
    std::uint64_t detected[W] = {};
    for (std::size_t c = 0; c < stimulus.size(); ++c) {
      for (std::size_t k = 0; k < inputs.size(); ++k) {
        ev.set_input(inputs[k], stimulus.input_bit(c, k));
      }
      // Every input changes each cycle, so the frontier is netlist-wide.
      ev.request_full_eval();
      ev.step();
      if (stimulus.observed(c)) {
        for (netlist::NetId out : observe) {
          for (unsigned w = 0; w < W; ++w) {
            detected[w] |= ev.diff_word(out, w, 0);
          }
        }
      }
    }
    for (std::size_t j = 0; j < batch; ++j) {
      if ((detected[(j + 1) / 64] >> ((j + 1) % 64)) & 1u) {
        flags[base + j] = 1;
      }
    }
  }
}

}  // namespace detail
}  // namespace sbst::fault
