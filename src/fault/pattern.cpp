#include "fault/pattern.hpp"

#include <stdexcept>

namespace sbst::fault {

namespace {

// Maps each input net id to its index within nl.inputs().
std::vector<std::size_t> input_index_map(const netlist::Netlist& nl) {
  std::vector<std::size_t> map(nl.size(), ~std::size_t{0});
  const auto& ins = nl.inputs();
  for (std::size_t k = 0; k < ins.size(); ++k) map[ins[k]] = k;
  return map;
}

}  // namespace

PatternSet::PatternSet(const netlist::Netlist& nl)
    : nl_(&nl), index_map_(input_index_map(nl)) {}

void PatternSet::add(const std::vector<PortValue>& values) {
  const std::size_t lane = count_ % 64;
  if (lane == 0) blocks_.emplace_back(nl_->inputs().size(), 0);
  auto& block = blocks_.back();

  for (const auto& [port, value] : values) {
    const netlist::Bus& bus = nl_->input_port(port);
    for (std::size_t b = 0; b < bus.size(); ++b) {
      const std::size_t k = index_map_[bus[b]];
      if ((value >> b) & 1u) {
        block[k] |= std::uint64_t{1} << lane;
      } else {
        block[k] &= ~(std::uint64_t{1} << lane);
      }
    }
  }
  ++count_;
}

void PatternSet::add_random(Rng& rng) {
  std::vector<PortValue> values;
  for (const netlist::Port& p : nl_->input_ports()) {
    values.emplace_back(p.name, rng.next64());
  }
  add(values);
}

std::uint64_t PatternSet::valid_lanes(std::size_t b) const {
  if (b + 1 < blocks_.size()) return ~std::uint64_t{0};
  const std::size_t rem = count_ % 64;
  return rem == 0 ? ~std::uint64_t{0} : low_mask(static_cast<unsigned>(rem));
}

std::uint64_t PatternSet::value_of(std::size_t index,
                                   const std::string& port) const {
  if (index >= count_) throw std::out_of_range("PatternSet::value_of");
  const auto& block = blocks_[index / 64];
  const unsigned lane = index % 64;
  const netlist::Bus& bus = nl_->input_port(port);

  std::uint64_t out = 0;
  for (std::size_t b = 0; b < bus.size(); ++b) {
    out |= ((block[index_map_[bus[b]]] >> lane) & 1u) << b;
  }
  return out;
}

SeqStimulus::SeqStimulus(const netlist::Netlist& nl)
    : nl_(&nl), index_map_(input_index_map(nl)) {}

void SeqStimulus::add_cycle(const std::vector<PortValue>& values,
                            bool observe) {
  Cycle c;
  c.bits.assign((nl_->inputs().size() + 63) / 64, 0);
  c.observe = observe;
  if (observe) ++observe_count_;

  for (const auto& [port, value] : values) {
    const netlist::Bus& bus = nl_->input_port(port);
    for (std::size_t b = 0; b < bus.size(); ++b) {
      const std::size_t k = index_map_[bus[b]];
      if ((value >> b) & 1u) c.bits[k >> 6] |= std::uint64_t{1} << (k & 63);
    }
  }
  cycles_.push_back(std::move(c));
}

}  // namespace sbst::fault
