#include "fault/pattern.hpp"

#include <stdexcept>

namespace sbst::fault {

namespace {

// Maps each input net id to its index within nl.inputs().
std::vector<std::size_t> input_index_map(const netlist::Netlist& nl) {
  std::vector<std::size_t> map(nl.size(), ~std::size_t{0});
  const auto& ins = nl.inputs();
  for (std::size_t k = 0; k < ins.size(); ++k) map[ins[k]] = k;
  return map;
}

}  // namespace

PatternSet::PatternSet(const netlist::Netlist& nl)
    : nl_(&nl), index_map_(input_index_map(nl)) {}

void PatternSet::add(const std::vector<PortValue>& values) {
  const std::size_t lane = count_ % 64;
  if (lane == 0) blocks_.emplace_back(nl_->inputs().size(), 0);
  auto& block = blocks_.back();

  for (const auto& [port, value] : values) {
    const netlist::Bus& bus = nl_->input_port(port);
    for (std::size_t b = 0; b < bus.size(); ++b) {
      const std::size_t k = index_map_[bus[b]];
      if ((value >> b) & 1u) {
        block[k] |= std::uint64_t{1} << lane;
      } else {
        block[k] &= ~(std::uint64_t{1} << lane);
      }
    }
  }
  ++count_;
}

void PatternSet::add_random(Rng& rng) {
  std::vector<PortValue> values;
  for (const netlist::Port& p : nl_->input_ports()) {
    values.emplace_back(p.name, rng.next64());
  }
  add(values);
}

std::uint64_t PatternSet::valid_lanes(std::size_t b) const {
  if (b + 1 < blocks_.size()) return ~std::uint64_t{0};
  const std::size_t rem = count_ % 64;
  return rem == 0 ? ~std::uint64_t{0} : low_mask(static_cast<unsigned>(rem));
}

std::uint64_t PatternSet::value_of(std::size_t index,
                                   const std::string& port) const {
  if (index >= count_) throw std::out_of_range("PatternSet::value_of");
  const auto& block = blocks_[index / 64];
  const unsigned lane = index % 64;
  const netlist::Bus& bus = nl_->input_port(port);

  std::uint64_t out = 0;
  for (std::size_t b = 0; b < bus.size(); ++b) {
    out |= ((block[index_map_[bus[b]]] >> lane) & 1u) << b;
  }
  return out;
}

void PatternSet::serialize(common::ByteWriter& w) const {
  w.put_u32(kSerialVersion);
  w.put_u64(count_);
  w.put_u64(blocks_.size());
  for (const auto& block : blocks_) w.put_vec_u64(block);
}

std::unique_ptr<PatternSet> PatternSet::deserialize(const netlist::Netlist& nl,
                                                    common::ByteReader& r) {
  if (r.get_u32() != kSerialVersion) return nullptr;
  auto ps = std::make_unique<PatternSet>(nl);
  ps->count_ = static_cast<std::size_t>(r.get_u64());
  const std::size_t n_blocks = r.get_count(8 * (nl.inputs().size() + 1));
  if (n_blocks != (ps->count_ + 63) / 64) return nullptr;
  ps->blocks_.reserve(n_blocks);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    ps->blocks_.push_back(r.get_vec_u64());
    if (ps->blocks_.back().size() != nl.inputs().size()) return nullptr;
  }
  if (!r.ok()) return nullptr;
  return ps;
}

SeqStimulus::SeqStimulus(const netlist::Netlist& nl)
    : nl_(&nl), index_map_(input_index_map(nl)) {}

void SeqStimulus::add_cycle(const std::vector<PortValue>& values,
                            bool observe) {
  Cycle c;
  c.bits.assign((nl_->inputs().size() + 63) / 64, 0);
  c.observe = observe;
  if (observe) ++observe_count_;

  for (const auto& [port, value] : values) {
    const netlist::Bus& bus = nl_->input_port(port);
    for (std::size_t b = 0; b < bus.size(); ++b) {
      const std::size_t k = index_map_[bus[b]];
      if ((value >> b) & 1u) c.bits[k >> 6] |= std::uint64_t{1} << (k & 63);
    }
  }
  cycles_.push_back(std::move(c));
}

}  // namespace sbst::fault
