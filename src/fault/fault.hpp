// Fault taxonomy with structural equivalence collapsing.
//
// The fault universe of a netlist contains a pair of faults (value 0 and
// value 1) on every gate output (stem) and every gate input pin (branch).
// Equivalent faults — indistinguishable by any test — are merged into
// classes via union-find using the standard rules (e.g. AND input sa0 ≡
// output sa0; single-fanout branch ≡ stem), and one representative per
// class is simulated. Coverage is reported over collapsed classes, matching
// the accounting of commercial fault simulators like the FlexTest runs in
// the paper.
//
// Every fault additionally carries a FaultModel — the on-line-testing fault
// classes the paper targets — that decides WHEN the site is forced:
//
//  * kStuckAt:      permanently forced (the manufacturing model).
//  * kTransition:   gross-delay; detected by a pattern *pair* where the
//                   launch pattern sets the line to the pre-transition value
//                   and the capture pattern is a stuck-at test for the
//                   post-transition value (stuck_value = the captured,
//                   faulty value; stuck_value 0 == slow-to-rise).
//  * kTransientSEU: a single-event upset; the force is active for exactly
//                   one pattern (or cycle) per kSeuWindow-long window, at a
//                   position drawn from the fault's own deterministic
//                   golden-ratio hash stream.
//  * kIntermittent: duty-cycled; whole kIntermittentBurst-long bursts are
//                   active when the fault's hash stream selects them (1 in
//                   kIntermittentPeriod bursts on average).
//
// Activation depends only on the fault's identity and the GLOBAL pattern /
// cycle index — never on lane position, batch, thread, or engine — which is
// what keeps grading bitwise deterministic for every thread count and lane
// width (see fault_active / fault_active_word).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "netlist/eval.hpp"
#include "netlist/netlist.hpp"

namespace sbst::fault {

/// When a fault's force is active during grading (see the header comment).
/// The numeric values are serialized (FaultUniverse images, store keys);
/// append only.
enum class FaultModel : std::uint8_t {
  kStuckAt = 0,
  kTransition = 1,
  kTransientSEU = 2,
  kIntermittent = 3,
};
inline constexpr std::size_t kFaultModels = 4;

/// "stuck-at", "transition", "transient", or "intermittent" (the CLI names).
const char* fault_model_name(FaultModel model);

/// Parses a model name (accepts "seu" as an alias for "transient"); returns
/// false and leaves `out` untouched on an unknown name.
bool parse_fault_model(const std::string& name, FaultModel& out);

struct Fault {
  netlist::Site site;
  /// The forced value. For kTransition this is the captured (faulty) value:
  /// 0 == slow-to-rise, 1 == slow-to-fall.
  bool stuck_value = false;
  FaultModel model = FaultModel::kStuckAt;

  friend bool operator==(const Fault&, const Fault&) = default;
};

/// Renders "g123(And).out/sa1", ".../STR", ".../seu0", ".../int1" — the
/// model picks the suffix family — for reports. parse_fault_name inverts it.
std::string fault_name(const netlist::Netlist& nl, const Fault& f);

/// Parses a fault_name() rendering back into a Fault. Returns false (and
/// leaves `out` untouched) on malformed text, a gate/pin that does not
/// exist in `nl`, or a gate kind that does not match.
bool parse_fault_name(const netlist::Netlist& nl, const std::string& name,
                      Fault& out);

// ---- per-model activation streams ------------------------------------------
// Shared by every grading engine. All constants are powers of two dividing
// 64 so one 64-lane word spans a whole number of windows/bursts.

/// Window length of the transient-SEU model: one active pattern/cycle per
/// window.
inline constexpr unsigned kSeuWindow = 16;
/// Burst length of the intermittent model: activation is decided (and
/// applied) for whole bursts.
inline constexpr unsigned kIntermittentBurst = 16;
/// One in kIntermittentPeriod bursts is active (25% duty cycle).
inline constexpr unsigned kIntermittentPeriod = 4;

///// Seed of a fault's private activation stream: a splitmix64 hash of the
/// fault's full identity, so equal faults always share a stream and distinct
/// faults (site, polarity, or model differing) get independent ones.
std::uint64_t fault_stream_key(const Fault& f);

/// Whether a fault with stream key `key` is active at global pattern/cycle
/// index `t`. kStuckAt (and kTransition, which has its own pair semantics)
/// are always-on.
bool fault_active(std::uint64_t key, FaultModel model, std::uint64_t t);

///// The 64 activation bits for indices [block*64, block*64 + 64): bit i ==
/// fault_active(key, model, block*64 + i). Costs 4 hashes per word.
std::uint64_t fault_active_word(std::uint64_t key, FaultModel model,
                                std::uint64_t block);

class FaultUniverse {
 public:
  /// Enumerates and collapses the universe of `nl` under `model`. The
  /// structural equivalence rules are value-based, so every model shares
  /// the stuck-at collapse; the model only tags the representatives (for
  /// kTransition, representative i is the transition fault whose captured
  /// value is the stuck-at representative's stuck value — the exact list
  /// the legacy enumerate_transition_faults produced).
  explicit FaultUniverse(const netlist::Netlist& nl,
                         FaultModel model = FaultModel::kStuckAt);

  const netlist::Netlist& netlist() const { return *nl_; }

  /// The model every representative carries.
  FaultModel model() const { return model_; }

  /// One representative fault per equivalence class.
  const std::vector<Fault>& collapsed() const { return representatives_; }

  /// Total faults before collapsing (for reporting).
  std::size_t uncollapsed_count() const { return uncollapsed_count_; }

  /// Number of equivalence classes (== collapsed().size()).
  std::size_t size() const { return representatives_.size(); }

  /// Binary-image format version (part of the artifact-store key). v2 added
  /// the fault-model header byte; v1 images are rejected and silently
  /// rebuilt by the artifact-store path.
  static constexpr std::uint32_t kSerialVersion = 2;

  /// Appends a versioned binary image of the collapsed universe to `w`.
  void serialize(common::ByteWriter& w) const;

  /// Rebuilds a collapsed universe from serialize() bytes produced against
  /// a structurally identical `nl`. Returns nullptr on any malformed image
  /// (wrong version, unknown model, truncation, out-of-range sites); the
  /// caller then re-collapses from scratch.
  static std::unique_ptr<FaultUniverse> deserialize(const netlist::Netlist& nl,
                                                    common::ByteReader& r);

 private:
  struct DeserializeTag {};
  FaultUniverse(const netlist::Netlist& nl, DeserializeTag) : nl_(&nl) {}

  const netlist::Netlist* nl_;
  FaultModel model_ = FaultModel::kStuckAt;
  std::vector<Fault> representatives_;
  std::size_t uncollapsed_count_ = 0;
};

/// Result of grading a fault list against a stimulus.
struct CoverageResult {
  std::size_t total = 0;
  std::size_t detected = 0;
  std::vector<std::uint8_t> detected_flags;  // indexed like the fault list

  double percent() const {
    return total == 0 ? 100.0 : 100.0 * static_cast<double>(detected) /
                                    static_cast<double>(total);
  }

  /// Recomputes `detected` from `detected_flags` — the flags are the single
  /// source of truth; every simulator finishes with this.
  void recount();

  /// Merges another grading of the SAME fault list (e.g. a second routine
  /// exercising the same component).
  void merge(const CoverageResult& other);

  std::vector<Fault> undetected(const std::vector<Fault>& faults) const;
};

/// One fault model's slice of a grading.
struct ModelCoverage {
  std::size_t total = 0;
  std::size_t detected = 0;

  double percent() const {
    return total == 0 ? 100.0 : 100.0 * static_cast<double>(detected) /
                                    static_cast<double>(total);
  }
};

/// Splits a grading over `faults` (possibly mixing models) into per-model
/// coverage slices, indexed by FaultModel value.
std::array<ModelCoverage, kFaultModels> split_by_model(
    const std::vector<Fault>& faults, const CoverageResult& result);

}  // namespace sbst::fault
