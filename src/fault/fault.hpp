// Single stuck-at fault model with structural equivalence collapsing.
//
// The fault universe of a netlist contains a stuck-at-0 and stuck-at-1 fault
// on every gate output (stem) and every gate input pin (branch). Equivalent
// faults — indistinguishable by any test — are merged into classes via
// union-find using the standard rules (e.g. AND input sa0 ≡ output sa0;
// single-fanout branch ≡ stem), and one representative per class is
// simulated. Coverage is reported over collapsed classes, matching the
// accounting of commercial fault simulators like the FlexTest runs in the
// paper.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "netlist/eval.hpp"
#include "netlist/netlist.hpp"

namespace sbst::fault {

struct Fault {
  netlist::Site site;
  bool stuck_value = false;

  friend bool operator==(const Fault&, const Fault&) = default;
};

/// Renders "g123.out/sa1" or "g123.in0/sa0" (with gate kind) for reports.
std::string fault_name(const netlist::Netlist& nl, const Fault& f);

class FaultUniverse {
 public:
  explicit FaultUniverse(const netlist::Netlist& nl);

  const netlist::Netlist& netlist() const { return *nl_; }

  /// One representative fault per equivalence class.
  const std::vector<Fault>& collapsed() const { return representatives_; }

  /// Total faults before collapsing (for reporting).
  std::size_t uncollapsed_count() const { return uncollapsed_count_; }

  /// Number of equivalence classes (== collapsed().size()).
  std::size_t size() const { return representatives_.size(); }

  /// Binary-image format version (part of the artifact-store key).
  static constexpr std::uint32_t kSerialVersion = 1;

  /// Appends a versioned binary image of the collapsed universe to `w`.
  void serialize(common::ByteWriter& w) const;

  /// Rebuilds a collapsed universe from serialize() bytes produced against
  /// a structurally identical `nl`. Returns nullptr on any malformed image
  /// (wrong version, truncation, out-of-range sites); the caller then
  /// re-collapses from scratch.
  static std::unique_ptr<FaultUniverse> deserialize(const netlist::Netlist& nl,
                                                    common::ByteReader& r);

 private:
  struct DeserializeTag {};
  FaultUniverse(const netlist::Netlist& nl, DeserializeTag) : nl_(&nl) {}

  const netlist::Netlist* nl_;
  std::vector<Fault> representatives_;
  std::size_t uncollapsed_count_ = 0;
};

/// Result of grading a fault list against a stimulus.
struct CoverageResult {
  std::size_t total = 0;
  std::size_t detected = 0;
  std::vector<std::uint8_t> detected_flags;  // indexed like the fault list

  double percent() const {
    return total == 0 ? 100.0 : 100.0 * static_cast<double>(detected) /
                                    static_cast<double>(total);
  }

  /// Recomputes `detected` from `detected_flags` — the flags are the single
  /// source of truth; every simulator finishes with this.
  void recount();

  /// Merges another grading of the SAME fault list (e.g. a second routine
  /// exercising the same component).
  void merge(const CoverageResult& other);

  std::vector<Fault> undetected(const std::vector<Fault>& faults) const;
};

}  // namespace sbst::fault
