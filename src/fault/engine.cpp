#include "fault/engine.hpp"

#include <cstdlib>

namespace sbst::fault {

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kReference: return "reference";
    case Engine::kCompiled: return "compiled";
    case Engine::kEvent: return "event";
  }
  return "?";
}

bool parse_engine(const std::string& name, Engine& out) {
  if (name == "reference") {
    out = Engine::kReference;
  } else if (name == "compiled") {
    out = Engine::kCompiled;
  } else if (name == "event") {
    out = Engine::kEvent;
  } else {
    return false;
  }
  return true;
}

Engine default_engine() {
  if (const char* env = std::getenv("SBST_ENGINE")) {
    Engine e;
    if (parse_engine(env, e)) return e;
  }
  return Engine::kEvent;
}

}  // namespace sbst::fault
