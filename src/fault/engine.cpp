#include "fault/engine.hpp"

#include <cstdlib>

#include "fault/sim_detail.hpp"

namespace sbst::fault {

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kReference: return "reference";
    case Engine::kCompiled: return "compiled";
    case Engine::kEvent: return "event";
  }
  return "?";
}

bool parse_engine(const std::string& name, Engine& out) {
  if (name == "reference") {
    out = Engine::kReference;
  } else if (name == "compiled") {
    out = Engine::kCompiled;
  } else if (name == "event") {
    out = Engine::kEvent;
  } else {
    return false;
  }
  return true;
}

Engine default_engine() {
  if (const char* env = std::getenv("SBST_ENGINE")) {
    Engine e;
    if (parse_engine(env, e)) return e;
  }
  return Engine::kEvent;
}

EngineContext::EngineContext(Engine engine, const netlist::Netlist& nl,
                             std::vector<netlist::NetId> observe,
                             const netlist::CompiledNetlist* compiled,
                             const std::uint8_t* reach)
    : engine_(engine),
      nl_(&nl),
      observe_(detail::resolve_observe(nl, observe)) {
  nl.topo_order();  // warm the shared cache before workers touch it
  if (engine_ == Engine::kReference) return;
  if (compiled) {
    compiled_ = compiled;
  } else {
    owned_compiled_ = std::make_unique<netlist::CompiledNetlist>(nl);
    compiled_ = owned_compiled_.get();
  }
  if (reach) {
    reach_ = reach;
  } else {
    reach_store_ = compiled_->fanin_cone(observe_);
    reach_ = reach_store_.data();
  }
}

}  // namespace sbst::fault
