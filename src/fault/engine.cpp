#include "fault/engine.hpp"

#include <cstdlib>

#include "common/serialize.hpp"
#include "fault/sim_detail.hpp"
#include "store/artifact_store.hpp"

namespace sbst::fault {

store::ArtifactKey compiled_store_key(const netlist::Netlist& nl,
                                      const netlist::CompileOptions& opts,
                                      unsigned lanes) {
  store::ArtifactKey key;
  key.kind = "compiled";
  key.version = netlist::CompiledNetlist::kSerialVersion;
  key.lanes = static_cast<std::uint8_t>(lanes);
  key.opts = static_cast<std::uint8_t>((opts.const_prop ? 1u : 0) |
                                       (opts.fuse_inverters ? 2u : 0) |
                                       (opts.dead_sweep ? 4u : 0));
  key.content = nl.content_hash();
  return key;
}

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kReference: return "reference";
    case Engine::kCompiled: return "compiled";
    case Engine::kEvent: return "event";
  }
  return "?";
}

bool parse_engine(const std::string& name, Engine& out) {
  if (name == "reference") {
    out = Engine::kReference;
  } else if (name == "compiled") {
    out = Engine::kCompiled;
  } else if (name == "event") {
    out = Engine::kEvent;
  } else {
    return false;
  }
  return true;
}

Engine default_engine() {
  if (const char* env = std::getenv("SBST_ENGINE")) {
    Engine e;
    if (parse_engine(env, e)) return e;
  }
  return Engine::kEvent;
}

bool parse_lanes(const std::string& text, unsigned& out) {
  if (text == "1") {
    out = 1;
  } else if (text == "4") {
    out = 4;
  } else {
    return false;
  }
  return true;
}

unsigned default_lanes() {
  if (const char* env = std::getenv("SBST_LANES")) {
    unsigned lanes;
    if (parse_lanes(env, lanes)) return lanes;
  }
  return 4;
}

bool default_netlist_opt() {
  if (const char* env = std::getenv("SBST_NETLIST_OPT")) {
    return std::string(env) != "0";
  }
  return true;
}

EngineContext::EngineContext(Engine engine, const netlist::Netlist& nl,
                             std::vector<netlist::NetId> observe,
                             const netlist::CompiledNetlist* compiled,
                             const std::uint8_t* reach, unsigned lanes,
                             int netlist_opt, store::ArtifactStore* store)
    : engine_(engine),
      nl_(&nl),
      observe_(detail::resolve_observe(nl, observe)) {
  if (lanes == 0) lanes = default_lanes();
  lanes_ = engine_ != Engine::kReference && lanes == 4 ? 4 : 1;
  nl.topo_order();  // warm the shared cache before workers touch it
  if (engine_ == Engine::kReference) return;
  if (compiled) {
    compiled_ = compiled;
  } else {
    const bool opt = netlist_opt < 0 ? default_netlist_opt() : netlist_opt != 0;
    const netlist::CompileOptions opts =
        opt ? netlist::CompileOptions::all() : netlist::CompileOptions{};
    if (store) {
      const store::ArtifactKey key = compiled_store_key(nl, opts, lanes_);
      if (auto payload = store->load(key)) {
        common::ByteReader r(*payload);
        auto cn = netlist::CompiledNetlist::deserialize(nl, r);
        if (cn && cn->options() == opts) owned_compiled_ = std::move(cn);
      }
      if (!owned_compiled_) {
        owned_compiled_ = std::make_unique<netlist::CompiledNetlist>(nl, opts);
        common::ByteWriter w;
        owned_compiled_->serialize(w);
        store->save(key, w.bytes());
      }
    } else {
      owned_compiled_ = std::make_unique<netlist::CompiledNetlist>(nl, opts);
    }
    compiled_ = owned_compiled_.get();
  }
  if (reach) {
    reach_ = reach;
  } else {
    reach_store_ = compiled_->fanin_cone(observe_);
    reach_ = reach_store_.data();
  }
}

}  // namespace sbst::fault
