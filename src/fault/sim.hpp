// Fault simulators.
//
// Three engines with one contract — grade a fault list against a stimulus,
// counting a fault detected when an observed output differs from the
// fault-free response:
//
//  * simulate_serial:   one fault at a time, one pattern at a time. The slow
//                       reference implementation the fast engines are
//                       cross-checked against in tests.
//  * simulate_comb:     PPSFP — 64 packed patterns per pass, one fault
//                       re-simulated per pass with fault dropping.
//                       Combinational netlists only.
//  * simulate_seq:      parallel-fault — lane 0 is the fault-free machine,
//                       lanes 1..63 carry faulty machines through the whole
//                       clocked stimulus. Works for sequential netlists
//                       (divider, register file, memory controller).
//
// Multi-threaded versions of the fast engines (fault-partitioned thread
// pool, bitwise-deterministic results) live in sim_parallel.hpp.
#pragma once

#include <optional>
#include <vector>

#include "fault/engine.hpp"
#include "fault/fault.hpp"
#include "fault/pattern.hpp"

namespace sbst::fault {

/// Restricts which output nets count as observation points (e.g. only the
/// outputs a self-test routine actually propagates). Empty = all outputs.
using ObserveSet = std::vector<netlist::NetId>;

// Each simulator accepts an evaluation Engine (engine.hpp). The default is
// kReference so these remain the oracles the fast paths are cross-checked
// against; detection flags are bitwise-identical for every engine, lane
// width, and optimization setting. `lanes` is the lane-block width in words
// for the compiled engines (0 = default_lanes(); the reference engine
// ignores it).

CoverageResult simulate_serial(const netlist::Netlist& nl,
                               const std::vector<Fault>& faults,
                               const PatternSet& patterns,
                               const ObserveSet& observe = {},
                               Engine engine = Engine::kReference,
                               unsigned lanes = 0);

CoverageResult simulate_comb(const netlist::Netlist& nl,
                             const std::vector<Fault>& faults,
                             const PatternSet& patterns,
                             const ObserveSet& observe = {},
                             Engine engine = Engine::kReference,
                             unsigned lanes = 0);

CoverageResult simulate_seq(const netlist::Netlist& nl,
                            const std::vector<Fault>& faults,
                            const SeqStimulus& stimulus,
                            const ObserveSet& observe = {},
                            Engine engine = Engine::kReference,
                            unsigned lanes = 0);

/// Incremental PPSFP grading for fault-dropping loops (ATPG test-set
/// generation): simulates `patterns` against the faults whose `flags` entry
/// is still 0 and sets the flag of each new detection. Reuses a prebuilt
/// EngineContext so repeated calls (one per pattern batch) pay for
/// compilation and cone marking once. Flags are bitwise-identical to
/// grading all batches together with any other simulator.
void simulate_comb_into(const EngineContext& ctx,
                        const std::vector<Fault>& faults,
                        const PatternSet& patterns, std::uint8_t* flags);

/// Fault-free responses of a combinational netlist: for each pattern, the
/// value of each observed output net (packed per pattern in pattern order).
/// Used by TPG-quality analyses and the MISR aliasing experiments.
std::vector<std::vector<bool>> good_responses(const netlist::Netlist& nl,
                                              const PatternSet& patterns,
                                              const ObserveSet& observe = {});

}  // namespace sbst::fault
