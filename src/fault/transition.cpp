#include "fault/transition.hpp"

#include <stdexcept>

namespace sbst::fault {

using netlist::Evaluator;
using netlist::Netlist;
using netlist::NetId;

std::string transition_fault_name(const Netlist& nl,
                                  const TransitionFault& f) {
  // Delegates to the unified namer: the captured (faulty) value of an STR
  // fault is 0, so stuck_value = !slow_to_rise.
  return fault_name(
      nl, Fault{f.site, !f.slow_to_rise, FaultModel::kTransition});
}

std::vector<TransitionFault> enumerate_transition_faults(const Netlist& nl) {
  // Rides on the unified taxonomy universe; entry i here and entry i of
  // FaultUniverse(nl, kTransition).collapsed() are the SAME fault, so
  // detection-flag vectors from the two paths compare index-for-index.
  const FaultUniverse universe(nl, FaultModel::kTransition);
  std::vector<TransitionFault> out;
  out.reserve(universe.size());
  for (const Fault& f : universe.collapsed()) {
    out.push_back({f.site, /*slow_to_rise=*/!f.stuck_value});
  }
  return out;
}

CoverageResult simulate_transition(const Netlist& nl,
                                   const std::vector<TransitionFault>& faults,
                                   const PatternSet& patterns,
                                   const ObserveSet& observe_in) {
  if (!nl.is_combinational()) {
    throw std::invalid_argument(
        "simulate_transition: combinational netlists only");
  }
  ObserveSet observe = observe_in;
  if (observe.empty()) observe = nl.output_nets();

  CoverageResult res;
  res.total = faults.size();
  res.detected_flags.assign(faults.size(), 0);
  if (patterns.size() < 2) return res;

  const std::size_t n_blocks = patterns.block_count();
  const auto& inputs = nl.inputs();

  // Fault-free values of every net, per block (for launch/capture checks).
  Evaluator good(nl);
  std::vector<std::vector<std::uint64_t>> good_vals(n_blocks);
  std::vector<std::vector<std::uint64_t>> good_out(n_blocks);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    const auto& words = patterns.block(b);
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      good.set_input_word(inputs[k], words[k]);
    }
    good.eval();
    good_vals[b].resize(nl.size());
    for (NetId id = 0; id < nl.size(); ++id) {
      good_vals[b][id] = good.value(id);
    }
    good_out[b].resize(observe.size());
    for (std::size_t o = 0; o < observe.size(); ++o) {
      good_out[b][o] = good.value(observe[o]);
    }
  }

  Evaluator bad(nl);
  for (std::size_t f = 0; f < faults.size(); ++f) {
    const TransitionFault& tf = faults[f];
    const bool sv = !tf.slow_to_rise;  // captured (faulty) value
    const NetId line = tf.site.is_output()
                           ? tf.site.gate
                           : nl.gate(tf.site.gate).in[tf.site.pin];

    // Per block: lanes where the equivalent stuck-at is detected, and
    // lanes where the line carries sv (launch) / !sv (capture).
    std::uint64_t prev_launch_msb = 0;  // lane 63 launch state of block b-1
    for (std::size_t b = 0; b < n_blocks && !res.detected_flags[f]; ++b) {
      const std::uint64_t valid = patterns.valid_lanes(b);
      const std::uint64_t lv = good_vals[b][line];
      const std::uint64_t launch = (sv ? lv : ~lv) & valid;
      const std::uint64_t capture_value = (sv ? ~lv : lv) & valid;
      std::uint64_t capture = 0;
      if (capture_value != 0) {
        const auto& words = patterns.block(b);
        for (std::size_t k = 0; k < inputs.size(); ++k) {
          bad.set_input_word(inputs[k], words[k]);
        }
        bad.clear_faults();
        bad.inject(tf.site, sv, ~std::uint64_t{0});
        bad.eval();
        std::uint64_t detect = 0;
        for (std::size_t o = 0; o < observe.size(); ++o) {
          detect |= good_out[b][o] ^ bad.value(observe[o]);
        }
        capture = capture_value & detect;
      }
      // Pair within the block: launch at lane L, capture at L+1...
      if ((launch << 1) & capture) {
        res.detected_flags[f] = 1;
      }
      // ...or across the block boundary (lane 63 -> lane 0).
      if (prev_launch_msb && (capture & 1u)) {
        res.detected_flags[f] = 1;
      }
      prev_launch_msb = (launch >> 63) & 1u;
    }
  }
  res.recount();
  return res;
}

}  // namespace sbst::fault
