// sbst — command-line driver for the SBST library.
//
//   sbst inventory                     component classification table
//   sbst generate <cut>                emit a self-test routine's assembly
//   sbst program                       emit the full SBST program assembly
//   sbst listing                       disassembled program listing
//   sbst export <cut> [verilog|blif]   gate-level netlist export
//   sbst evaluate                      run + fault-grade the full program
//   sbst campaign [<cut>...]           guarded injection campaign with the
//                                      RunOutcome taxonomy table
//   sbst conform generate --seed N --count M --out DIR
//                                      write a randomized conformance corpus
//   sbst conform run DIR               three-executor differential replay of
//                                      a corpus directory
//
// <cut> is one of: mul div rf mem shifter alu ctrl
//
// Global options:
//   --threads N / -j N   fault-simulation worker threads (also SBST_THREADS
//                        env var; default: hardware concurrency)
//   --no-lane-parallel   disable PPSFP lane packing of faults
//   --engine NAME        evaluation engine: reference | compiled | event
//                        (also SBST_ENGINE env var; default: event)
//   --lanes N            lane-block width in 64-bit words for the compiled
//                        engines: 1 or 4 (also SBST_LANES env var; default
//                        4 = 255 faults + good machine per pass; results
//                        are identical for every width)
//   --netlist-opt / --no-netlist-opt
//                        netlist-compile optimization passes (const prop,
//                        inverter fusion, dead sweep; also SBST_NETLIST_OPT
//                        env var; default on; results identical either way)
//   --session-cache / --no-session-cache
//                        reuse grading artifacts (fault universes, compiled
//                        netlists, observe cones) across gradings (default
//                        on; results are identical either way)
//   --budget-factor K    watchdog budget for faulty runs: K x the good
//                        machine's instructions/cycles/stores (default 8;
//                        0 = legacy unlimited 1<<24 instruction cap)
//   --max-faults N       cap the per-CUT fault list of `campaign`
//                        (default 32; 0 = the full collapsed universe)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/tablefmt.hpp"
#include "conform/gen.hpp"
#include "conform/runner.hpp"
#include "core/evaluate.hpp"
#include "isa/disasm.hpp"
#include "netlist/export.hpp"

using namespace sbst;
using namespace sbst::core;

namespace {

int usage() {
  std::fputs(
      "usage: sbst <command> [args]\n"
      "  inventory                     component classification table\n"
      "  generate <cut>                self-test routine assembly\n"
      "  program                       full SBST program assembly\n"
      "  listing                       disassembled program listing\n"
      "  export <cut> [verilog|blif]   netlist export (default verilog)\n"
      "  evaluate                      run + fault-grade the program\n"
      "  campaign [<cut>...]           guarded injection campaign outcome\n"
      "                                table (default: alu shifter mul)\n"
      "  conform generate --seed N --count M --out DIR\n"
      "                                write a randomized conformance "
      "corpus\n"
      "                                (defaults: seed 1, count 500)\n"
      "  conform run DIR               replay a corpus through all three\n"
      "                                executors, diff bitwise\n"
      "cuts: mul div rf mem shifter alu ctrl\n"
      "options: --threads N | -j N   fault-sim worker threads (env "
      "SBST_THREADS;\n"
      "                              default: hardware concurrency)\n"
      "         --no-lane-parallel   disable PPSFP lane packing of faults\n"
      "         --engine NAME        reference | compiled | event (env "
      "SBST_ENGINE;\n"
      "                              default: event)\n"
      "         --lanes N            lane-block width in words: 1 | 4 (env "
      "SBST_LANES;\n"
      "                              default 4; identical results)\n"
      "         --netlist-opt / --no-netlist-opt\n"
      "                              netlist-compile optimization passes "
      "(env\n"
      "                              SBST_NETLIST_OPT; default on; identical "
      "results)\n"
      "         --session-cache / --no-session-cache\n"
      "                              reuse grading artifacts across "
      "gradings\n"
      "                              (default on; identical results)\n"
      "         --cpu-stats          print the CPU-time-equation breakdown\n"
      "                              (cycles, stalls, miss rates) to "
      "stderr\n"
      "         --budget-factor K    faulty-run watchdog budget: K x the\n"
      "                              good run (default 8; 0 = legacy cap)\n"
      "         --max-faults N       per-CUT fault cap for campaign\n"
      "                              (default 32; 0 = full universe)\n",
      stderr);
  return 2;
}

struct CutName {
  const char* name;
  CutId id;
};
constexpr CutName kCuts[] = {
    {"mul", CutId::kMultiplier}, {"div", CutId::kDivider},
    {"rf", CutId::kRegisterFile}, {"mem", CutId::kMemCtrl},
    {"shifter", CutId::kShifter}, {"alu", CutId::kAlu},
    {"ctrl", CutId::kControl},
};

bool parse_cut(const char* arg, CutId& out) {
  for (const CutName& c : kCuts) {
    if (std::strcmp(arg, c.name) == 0) {
      out = c.id;
      return true;
    }
  }
  return false;
}

Routine make_routine(const ProcessorModel& model, CutId cut) {
  const CodegenOptions opts;
  switch (cut) {
    case CutId::kMultiplier: return make_multiplier_routine(opts);
    case CutId::kDivider: return make_divider_routine(opts);
    case CutId::kRegisterFile: return make_regfile_routine(opts);
    case CutId::kMemCtrl: return make_memctrl_routine(opts);
    case CutId::kShifter: return make_shifter_routine(model, opts);
    case CutId::kAlu: return make_alu_routine(opts);
    default: return make_control_routine(opts);
  }
}

int cmd_inventory(const ProcessorModel& model) {
  Table t({"Component", "Class", "GE", "Strategy", "Priority",
           "Periodic", "Excited by"});
  for (const ComponentInfo* c : model.by_priority()) {
    t.add_row({c->name, class_name(c->cls),
               Table::num(static_cast<std::uint64_t>(c->gate_equivalents())),
               strategy_name(c->default_strategy),
               Table::num(static_cast<std::uint64_t>(c->test_priority)),
               c->periodic_suitable ? "yes" : "no", c->excite});
  }
  t.print();
  std::printf("total: %s gate equivalents, D-VC share %.1f%%\n",
              Table::num(static_cast<std::uint64_t>(
                             model.total_gate_equivalents()))
                  .c_str(),
              100 * model.class_area_fraction(ComponentClass::kDataVisible));
  return 0;
}

int cmd_generate(const ProcessorModel& model, CutId cut) {
  const Routine r = make_routine(model, cut);
  std::printf("# routine %s  style %s  target %s  signature slot %u\n",
              r.name.c_str(), r.style.c_str(),
              model.component(cut).name.c_str(), r.sig_slot);
  std::fputs(r.assembly.c_str(), stdout);
  if (!r.data_assembly.empty()) {
    std::puts("# data");
    std::fputs(r.data_assembly.c_str(), stdout);
  }
  return 0;
}

int cmd_program(const ProcessorModel& model, bool listing) {
  TestProgramBuilder builder;
  builder.add_default_routines(model);
  const TestProgram program = builder.build();
  if (listing) {
    std::fputs(isa::listing(program.image.words, program.image.base).c_str(),
               stdout);
  } else {
    for (const Routine& r : program.routines) {
      std::printf("# ---- %s (%s) ----\n", r.name.c_str(), r.style.c_str());
      std::fputs(r.assembly.c_str(), stdout);
    }
    std::fputs("  break\n", stdout);
    std::fputs(misr_subroutines().c_str(), stdout);
    std::fputs("signatures:\n  .word 0, 0, 0, 0, 0, 0, 0, 0\n", stdout);
    for (const Routine& r : program.routines) {
      std::fputs(r.data_assembly.c_str(), stdout);
    }
  }
  std::fprintf(stderr, "# %zu words, %zu routines\n",
               program.image.size_words(), program.routines.size());
  return 0;
}

int cmd_export(const ProcessorModel& model, CutId cut, const char* format) {
  const netlist::Netlist& nl = model.component(cut).netlist;
  if (format && std::strcmp(format, "blif") == 0) {
    std::fputs(netlist::to_blif(nl).c_str(), stdout);
  } else {
    std::fputs(netlist::to_verilog(nl).c_str(), stdout);
  }
  return 0;
}

// --cpu-stats: the paper's §2 CPU-time equation, term by term. Goes to
// stderr so the determinism-checked stdout stays untouched.
void print_cpu_stats(const sim::ExecStats& s) {
  const double imiss =
      s.icache_accesses == 0
          ? 0.0
          : 100.0 * static_cast<double>(s.icache_misses) /
                static_cast<double>(s.icache_accesses);
  const double dmiss =
      s.dcache_accesses == 0
          ? 0.0
          : 100.0 * static_cast<double>(s.dcache_misses) /
                static_cast<double>(s.dcache_accesses);
  std::fprintf(stderr, "# cpu-stats: instructions %llu\n",
               static_cast<unsigned long long>(s.instructions));
  std::fprintf(stderr,
               "# cpu-stats: cpu cycles %llu + pipeline stalls %llu + "
               "memory stalls %llu = %llu total\n",
               static_cast<unsigned long long>(s.cpu_cycles),
               static_cast<unsigned long long>(s.pipeline_stall_cycles),
               static_cast<unsigned long long>(s.memory_stall_cycles),
               static_cast<unsigned long long>(s.total_cycles()));
  std::fprintf(stderr,
               "# cpu-stats: loads %llu stores %llu (data refs %llu)\n",
               static_cast<unsigned long long>(s.loads),
               static_cast<unsigned long long>(s.stores),
               static_cast<unsigned long long>(s.data_references()));
  std::fprintf(stderr,
               "# cpu-stats: icache %llu/%llu misses (%.2f%%), dcache "
               "%llu/%llu misses (%.2f%%)\n",
               static_cast<unsigned long long>(s.icache_misses),
               static_cast<unsigned long long>(s.icache_accesses), imiss,
               static_cast<unsigned long long>(s.dcache_misses),
               static_cast<unsigned long long>(s.dcache_accesses), dmiss);
  std::fprintf(stderr,
               "# cpu-stats: analytic total (5%% miss, 20-cycle penalty) "
               "%llu cycles\n",
               static_cast<unsigned long long>(
                   s.analytic_total_cycles(0.05, 20)));
  std::fprintf(stderr, "# cpu-stats: %.1f us at 57 MHz\n",
               1e6 * s.seconds(57e6));
}

// Selected engine / lane / optimization configuration, resolved to what the
// gradings will actually run. Stderr only: stdout is golden-diffed across
// widths and engines.
void print_engine_config(const fault::SimOptions& sim) {
  const bool reference = sim.engine == fault::Engine::kReference;
  const unsigned lanes =
      reference ? 1
                : (sim.lanes == 0 ? fault::default_lanes()
                                  : (sim.lanes == 4 ? 4u : 1u));
  const bool opt = !reference &&
                   (sim.netlist_opt < 0 ? fault::default_netlist_opt()
                                        : sim.netlist_opt != 0);
  std::fprintf(stderr,
               "# config: engine %s, lanes %u (%u fault lanes/pass), "
               "netlist-opt %s\n",
               fault::engine_name(sim.engine), lanes, 64 * lanes - 1,
               opt ? "on" : "off");
}

int cmd_evaluate(const ProcessorModel& model, const fault::SimOptions& sim,
                 bool session_cache, bool cpu_stats) {
  print_engine_config(sim);
  TestProgramBuilder builder;
  builder.add_default_routines(model);
  const TestProgram program = builder.build();
  EvalOptions options;
  options.sim = sim;
  GradingSession session(model, {.num_threads = sim.num_threads,
                                 .cache = session_cache,
                                 .lanes = sim.lanes,
                                 .netlist_opt = sim.netlist_opt});
  const ProgramEvaluation ev =
      evaluate_program(session, builder, program, options);
  Table t({"Component", "FC (%)", "Miss. FC (%)"});
  for (const CutCoverage& c : ev.cuts) {
    t.add_row({model.component(c.id).name,
               Table::num(c.coverage.percent(), 1),
               Table::num(ev.missing_fc(c.id), 2)});
  }
  t.print();
  std::printf("overall FC %.2f%%; %llu cycles, %llu stalls, %llu data refs\n",
              ev.overall_fc(),
              static_cast<unsigned long long>(ev.total.cpu_cycles),
              static_cast<unsigned long long>(
                  ev.total.pipeline_stall_cycles),
              static_cast<unsigned long long>(ev.total.data_references()));
  // Stage timings go to stderr: stdout must stay byte-identical for every
  // thread count / engine / cache setting (the CI determinism check diffs
  // it), while wall-clock never is.
  std::fprintf(stderr,
               "# stages (s): trace %.3f collapse %.3f compile %.3f "
               "grade %.3f standalone %.3f\n",
               ev.stages.trace, ev.stages.collapse, ev.stages.compile,
               ev.stages.grade, ev.stages.standalone);
  if (cpu_stats) print_cpu_stats(ev.total);
  return 0;
}

// Guarded injection campaign over the injectable CUTs: every fault gets a
// classified RunOutcome; the table splits detections into signature vs
// symptom. Stdout is deterministic for any thread count / cache setting
// (the CI smoke diffs it); wall-clock goes to stderr.
int cmd_campaign(const ProcessorModel& model, const fault::SimOptions& sim,
                 bool session_cache, double budget_factor,
                 std::size_t max_faults, const std::vector<CutId>& cuts) {
  print_engine_config(sim);
  TestProgramBuilder builder;
  builder.add_default_routines(model);
  const TestProgram program = builder.build();
  GradingSession session(model, {.num_threads = sim.num_threads,
                                 .cache = session_cache,
                                 .lanes = sim.lanes,
                                 .netlist_opt = sim.netlist_opt,
                                 .budget_factor = budget_factor});
  const auto t0 = std::chrono::steady_clock::now();
  OutcomeHistogram total;
  Table t({"Component", "Faults", "Sig", "Hang", "Trap", "Wild", "Ok",
           "Infra", "Det (%)"});
  for (const CutId cut : cuts) {
    std::vector<fault::Fault> faults = session.universe(cut).collapsed();
    if (max_faults != 0 && faults.size() > max_faults) {
      faults.resize(max_faults);
    }
    const OutcomeHistogram h = histogram_of(
        run_injection_campaign(session, program, cut, faults, {}));
    for (std::size_t k = 0; k < kRunOutcomeCount; ++k) {
      total.counts[k] += h.counts[k];
    }
    const double det =
        h.total() == 0 ? 0.0
                       : 100.0 * static_cast<double>(h.detected()) /
                             static_cast<double>(h.total());
    t.add_row({model.component(cut).name,
               Table::num(static_cast<std::uint64_t>(h.total())),
               Table::num(static_cast<std::uint64_t>(
                   h.detected_by_signature())),
               Table::num(static_cast<std::uint64_t>(
                   h.count(RunOutcome::kDetectedHang))),
               Table::num(static_cast<std::uint64_t>(
                   h.count(RunOutcome::kDetectedTrap))),
               Table::num(static_cast<std::uint64_t>(
                   h.count(RunOutcome::kDetectedWildStore))),
               Table::num(static_cast<std::uint64_t>(
                   h.count(RunOutcome::kOkMatch))),
               Table::num(static_cast<std::uint64_t>(
                   h.count(RunOutcome::kInfraError))),
               Table::num(det, 1)});
  }
  t.print();
  std::printf(
      "campaign: %zu faults, detected %zu (signature %zu, symptom %zu), "
      "infra errors %zu\n",
      total.total(), total.detected(), total.detected_by_signature(),
      total.detected_by_symptom(), total.count(RunOutcome::kInfraError));
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::fprintf(stderr,
               "# campaign: budget factor %.1f, %.3f s wall, %zu faults\n",
               budget_factor, wall, total.total());
  return 0;
}

// `conform generate`: write a randomized corpus directory. The summary on
// stdout (count, classes, content hash) is deterministic for a given
// (seed, count); wall-clock goes to stderr.
int cmd_conform_generate(std::uint64_t seed, std::size_t count,
                         const char* out_dir) {
  const auto t0 = std::chrono::steady_clock::now();
  const conform::CaseGen gen({.seed = seed, .count = count});
  const conform::Corpus corpus = gen.generate();
  conform::save_corpus(corpus, out_dir);
  std::size_t traps = 0;
  for (const conform::ConformCase& c : corpus.cases) {
    if (!c.trap.empty()) ++traps;
  }
  std::printf("conform: generated %zu cases, %zu classes, %zu trap cases, "
              "seed %llu\n",
              corpus.cases.size(),
              conform::corpus_class_names(corpus).size(), traps,
              static_cast<unsigned long long>(corpus.seed));
  std::printf("corpus %s content hash %016llx\n", corpus.version.c_str(),
              static_cast<unsigned long long>(
                  conform::corpus_content_hash(corpus)));
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::fprintf(stderr, "# conform: generated in %.3f s, wrote %s\n", wall,
               out_dir);
  return 0;
}

// `conform run`: three-executor differential replay. Stdout (per-class
// table, failure details, summary) is deterministic for any thread count /
// cache setting — the CI golden diff depends on it. Timings go to stderr.
int cmd_conform_run(const ProcessorModel& model, const fault::SimOptions& sim,
                    bool session_cache, const char* dir) {
  const auto t0 = std::chrono::steady_clock::now();
  const conform::Corpus corpus = conform::load_corpus(dir);
  const auto t1 = std::chrono::steady_clock::now();
  GradingSession session(model, {.num_threads = sim.num_threads,
                                 .cache = session_cache,
                                 .lanes = sim.lanes,
                                 .netlist_opt = sim.netlist_opt});
  const conform::ConformRunner runner(&session);
  const conform::ConformReport report = runner.run(corpus);
  const auto t2 = std::chrono::steady_clock::now();
  Table t({"Class", "Cases", "Pass", "Fail"});
  for (const conform::ClassTally& tally : report.by_class) {
    t.add_row({tally.cls,
               Table::num(static_cast<std::uint64_t>(tally.cases)),
               Table::num(static_cast<std::uint64_t>(tally.pass)),
               Table::num(static_cast<std::uint64_t>(tally.fail))});
  }
  t.print();
  for (const conform::CaseFailure& f : report.failures) {
    std::printf("FAIL %s [%s]: %s\n", f.name.c_str(),
                conform::executor_name(f.exec), f.detail.c_str());
  }
  std::printf("conform: %zu cases, passed %zu, failed %zu "
              "(%s, seed %llu, content hash %016llx)\n",
              report.cases, report.passed, report.failed,
              corpus.version.c_str(),
              static_cast<unsigned long long>(corpus.seed),
              static_cast<unsigned long long>(
                  conform::corpus_content_hash(corpus)));
  std::fprintf(stderr, "# conform: load %.3f s, replay %.3f s, %zu cases\n",
               std::chrono::duration<double>(t1 - t0).count(),
               std::chrono::duration<double>(t2 - t1).count(), report.cases);
  return report.ok() ? 0 : 1;
}

int cmd_conform(const ProcessorModel& model, const fault::SimOptions& sim,
                bool session_cache, const std::vector<const char*>& args) {
  if (args.size() < 2) return usage();
  const std::string sub = args[1];
  if (sub == "generate") {
    std::uint64_t seed = 1;
    std::size_t count = 500;
    const char* out_dir = nullptr;
    for (std::size_t k = 2; k < args.size(); ++k) {
      const char* a = args[k];
      if (std::strcmp(a, "--seed") == 0 && k + 1 < args.size()) {
        char* end = nullptr;
        seed = std::strtoull(args[++k], &end, 10);
        if (end == args[k] || *end != '\0') return usage();
      } else if (std::strcmp(a, "--count") == 0 && k + 1 < args.size()) {
        const long v = std::strtol(args[++k], nullptr, 10);
        if (v <= 0) return usage();
        count = static_cast<std::size_t>(v);
      } else if (std::strcmp(a, "--out") == 0 && k + 1 < args.size()) {
        out_dir = args[++k];
      } else {
        return usage();
      }
    }
    if (!out_dir) return usage();
    return cmd_conform_generate(seed, count, out_dir);
  }
  if (sub == "run") {
    if (args.size() != 3) return usage();
    return cmd_conform_run(model, sim, session_cache, args[2]);
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  // Strip global options; everything else stays positional.
  fault::SimOptions sim;
  bool session_cache = true;
  bool cpu_stats = false;
  double budget_factor = 8.0;
  std::size_t max_faults = 32;
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--threads") == 0 || std::strcmp(a, "-j") == 0) {
      if (i + 1 >= argc) return usage();
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v <= 0) return usage();
      sim.num_threads = static_cast<unsigned>(v);
    } else if (std::strcmp(a, "--no-lane-parallel") == 0) {
      sim.lane_parallel = false;
    } else if (std::strcmp(a, "--session-cache") == 0) {
      session_cache = true;
    } else if (std::strcmp(a, "--no-session-cache") == 0) {
      session_cache = false;
    } else if (std::strcmp(a, "--cpu-stats") == 0) {
      cpu_stats = true;
    } else if (std::strcmp(a, "--budget-factor") == 0) {
      if (i + 1 >= argc) return usage();
      char* end = nullptr;
      budget_factor = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0') return usage();
    } else if (std::strcmp(a, "--max-faults") == 0) {
      if (i + 1 >= argc) return usage();
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v < 0) return usage();
      max_faults = static_cast<std::size_t>(v);
    } else if (std::strcmp(a, "--engine") == 0 ||
               std::strncmp(a, "--engine=", 9) == 0) {
      const char* name = a[8] == '=' ? a + 9 : nullptr;
      if (!name) {
        if (i + 1 >= argc) return usage();
        name = argv[++i];
      }
      if (!fault::parse_engine(name, sim.engine)) return usage();
    } else if (std::strcmp(a, "--lanes") == 0 ||
               std::strncmp(a, "--lanes=", 8) == 0) {
      const char* value = a[7] == '=' ? a + 8 : nullptr;
      if (!value) {
        if (i + 1 >= argc) return usage();
        value = argv[++i];
      }
      if (!fault::parse_lanes(value, sim.lanes)) return usage();
    } else if (std::strcmp(a, "--netlist-opt") == 0) {
      sim.netlist_opt = 1;
    } else if (std::strcmp(a, "--no-netlist-opt") == 0) {
      sim.netlist_opt = 0;
    } else {
      args.push_back(a);
    }
  }
  if (args.empty()) return usage();
  const std::string cmd = args[0];
  ProcessorModel model;
  if (cmd == "inventory") return cmd_inventory(model);
  if (cmd == "program") return cmd_program(model, false);
  if (cmd == "listing") return cmd_program(model, true);
  if (cmd == "evaluate") {
    return cmd_evaluate(model, sim, session_cache, cpu_stats);
  }
  if (cmd == "campaign") {
    std::vector<CutId> cuts;
    for (std::size_t k = 1; k < args.size(); ++k) {
      CutId cut;
      if (!parse_cut(args[k], cut)) return usage();
      if (cut != CutId::kAlu && cut != CutId::kShifter &&
          cut != CutId::kMultiplier) {
        std::fprintf(stderr,
                     "campaign: %s is not an injectable CUT "
                     "(alu / shifter / mul)\n",
                     args[k]);
        return 2;
      }
      cuts.push_back(cut);
    }
    if (cuts.empty()) {
      cuts = {CutId::kAlu, CutId::kShifter, CutId::kMultiplier};
    }
    return cmd_campaign(model, sim, session_cache, budget_factor, max_faults,
                        cuts);
  }
  if (cmd == "conform") {
    try {
      return cmd_conform(model, sim, session_cache, args);
    } catch (const conform::ConformError& e) {
      std::fprintf(stderr, "conform: %s\n", e.what());
      return 1;
    }
  }
  if (cmd == "generate" || cmd == "export") {
    if (args.size() < 2) return usage();
    CutId cut;
    if (!parse_cut(args[1], cut)) return usage();
    return cmd == "generate"
               ? cmd_generate(model, cut)
               : cmd_export(model, cut, args.size() > 2 ? args[2] : nullptr);
  }
  return usage();
}
