// sbst — command-line driver for the SBST library.
//
//   sbst inventory                     component classification table
//   sbst generate <cut>                emit a self-test routine's assembly
//   sbst program                       emit the full SBST program assembly
//   sbst listing                       disassembled program listing
//   sbst export <cut> [verilog|blif]   gate-level netlist export
//   sbst evaluate                      run + fault-grade the full program
//   sbst campaign [<cut>...]           guarded injection campaign with the
//                                      RunOutcome taxonomy table
//   sbst serve                         long-running line-protocol daemon:
//                                      evaluate / campaign / conform run /
//                                      stats requests over one warm session
//   sbst conform generate --seed N --count M --out DIR
//                                      write a randomized conformance corpus
//   sbst conform run DIR               three-executor differential replay of
//                                      a corpus directory
//
// <cut> is one of: mul div rf mem shifter alu ctrl
//
// Global options:
//   --threads N / -j N   fault-simulation worker threads (also SBST_THREADS
//                        env var; default: hardware concurrency)
//   --no-lane-parallel   disable PPSFP lane packing of faults
//   --engine NAME        evaluation engine: reference | compiled | event
//                        (also SBST_ENGINE env var; default: event)
//   --lanes N            lane-block width in 64-bit words for the compiled
//                        engines: 1 or 4 (also SBST_LANES env var; default
//                        4 = 255 faults + good machine per pass; results
//                        are identical for every width)
//   --netlist-opt / --no-netlist-opt
//                        netlist-compile optimization passes (const prop,
//                        inverter fusion, dead sweep; also SBST_NETLIST_OPT
//                        env var; default on; results identical either way)
//   --session-cache / --no-session-cache
//                        reuse grading artifacts (fault universes, compiled
//                        netlists, observe cones) across gradings (default
//                        on; results are identical either way)
//   --store DIR          persistent content-addressed artifact store; "auto"
//                        = $XDG_CACHE_HOME/sbst or ~/.cache/sbst (also
//                        SBST_STORE env var; results are identical with the
//                        store on, off, cold, or warm)
//   --no-store           ignore SBST_STORE; no persistent store
//   --fault-model M[,M...]
//                        fault models for evaluate/campaign: stuck-at |
//                        transition | transient | intermittent, comma
//                        separated (also SBST_FAULT_MODEL env var; default
//                        stuck-at keeps the legacy output; any other
//                        selection adds a Model column)
//   --budget-factor K    watchdog budget for faulty runs: K x the good
//                        machine's instructions/cycles/stores (default 8;
//                        0 = legacy unlimited 1<<24 instruction cap)
//   --max-faults N       cap the per-CUT fault list of `campaign`
//                        (default 32; 0 = the full collapsed universe)
//   --store-budget BYTES total-size budget for the persistent store; after
//                        each save the store evicts least-recently-used
//                        entries (oldest mtime first) until it fits
//                        (default 0 = unlimited)
//
// Serve options (the hardened daemon):
//   --serve-threads N    request workers for `serve` (default 1 = the
//                        serial loop; N > 1 handles requests concurrently
//                        with responses emitted in admission order, so the
//                        byte stream is identical for every N)
//   --serve-queue N      bounded admission queue depth; excess work
//                        requests shed with `err overloaded retry-after=MS`
//                        (default 16; concurrent loop only)
//   --request-deadline MS|auto
//                        per-request wall-clock deadline; exceeded requests
//                        answer `err timeout deadline=MSms`. "auto" derives
//                        each verb's deadline from its last good run
//                        (default: unlimited)
//   --journal FILE       write-ahead request journal: work requests are
//                        journaled before execution and sealed after their
//                        response is flushed
//   --replay-journal     on startup, re-run unsealed journal entries (crash
//                        recovery) and verify sealed ones, then serve
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/tablefmt.hpp"
#include "conform/gen.hpp"
#include "conform/runner.hpp"
#include "core/evaluate.hpp"
#include "isa/disasm.hpp"
#include "netlist/export.hpp"
#include "serve/serve.hpp"
#include "store/artifact_store.hpp"

using namespace sbst;
using namespace sbst::core;

namespace {

int usage() {
  std::fputs(
      "usage: sbst <command> [args]\n"
      "  inventory                     component classification table\n"
      "  generate <cut>                self-test routine assembly\n"
      "  program                       full SBST program assembly\n"
      "  listing                       disassembled program listing\n"
      "  export <cut> [verilog|blif]   netlist export (default verilog)\n"
      "  evaluate                      run + fault-grade the program\n"
      "  campaign [<cut>...]           guarded injection campaign outcome\n"
      "                                table (default: alu shifter mul)\n"
      "  serve                         line-protocol daemon on stdin/stdout\n"
      "                                (evaluate | campaign [<cut>...] |\n"
      "                                conform run DIR | stats | ping | "
      "quit)\n"
      "  conform generate --seed N --count M --out DIR\n"
      "                                write a randomized conformance "
      "corpus\n"
      "                                (defaults: seed 1, count 500)\n"
      "  conform run DIR               replay a corpus through all three\n"
      "                                executors, diff bitwise\n"
      "cuts: mul div rf mem shifter alu ctrl\n"
      "options: --threads N | -j N   fault-sim worker threads (env "
      "SBST_THREADS;\n"
      "                              default: hardware concurrency)\n"
      "         --no-lane-parallel   disable PPSFP lane packing of faults\n"
      "         --engine NAME        reference | compiled | event (env "
      "SBST_ENGINE;\n"
      "                              default: event)\n"
      "         --lanes N            lane-block width in words: 1 | 4 (env "
      "SBST_LANES;\n"
      "                              default 4; identical results)\n"
      "         --netlist-opt / --no-netlist-opt\n"
      "                              netlist-compile optimization passes "
      "(env\n"
      "                              SBST_NETLIST_OPT; default on; identical "
      "results)\n"
      "         --session-cache / --no-session-cache\n"
      "                              reuse grading artifacts across "
      "gradings\n"
      "                              (default on; identical results)\n"
      "         --store DIR          persistent artifact store; \"auto\" = \n"
      "                              ~/.cache/sbst (env SBST_STORE; "
      "identical\n"
      "                              results cold or warm)\n"
      "         --no-store           ignore SBST_STORE; no persistent "
      "store\n"
      "         --fault-model M[,M...]\n"
      "                              evaluate/campaign fault models: "
      "stuck-at |\n"
      "                              transition | transient | intermittent\n"
      "                              (env SBST_FAULT_MODEL; default "
      "stuck-at)\n"
      "         --cpu-stats          print the CPU-time-equation breakdown\n"
      "                              (cycles, stalls, miss rates) to "
      "stderr\n"
      "         --budget-factor K    faulty-run watchdog budget: K x the\n"
      "                              good run (default 8; 0 = legacy cap)\n"
      "         --max-faults N       per-CUT fault cap for campaign\n"
      "                              (default 32; 0 = full universe)\n"
      "         --store-budget BYTES LRU size budget for the persistent "
      "store\n"
      "                              (default 0 = unlimited)\n"
      "serve options:\n"
      "         --serve-threads N    request workers (default 1 = serial; "
      "any N\n"
      "                              emits identical response bytes)\n"
      "         --serve-queue N      admission queue depth before shedding\n"
      "                              (default 16)\n"
      "         --request-deadline MS|auto\n"
      "                              per-request deadline -> `err timeout`\n"
      "                              (auto = 8 x last good run; default "
      "off)\n"
      "         --journal FILE       write-ahead request journal\n"
      "         --replay-journal     recover/verify the journal, then "
      "serve\n",
      stderr);
  return 2;
}

bool parse_cut(const char* arg, CutId& out) {
  return serve::parse_cut_name(arg, out);
}

Routine make_routine(const ProcessorModel& model, CutId cut) {
  const CodegenOptions opts;
  switch (cut) {
    case CutId::kMultiplier: return make_multiplier_routine(opts);
    case CutId::kDivider: return make_divider_routine(opts);
    case CutId::kRegisterFile: return make_regfile_routine(opts);
    case CutId::kMemCtrl: return make_memctrl_routine(opts);
    case CutId::kShifter: return make_shifter_routine(model, opts);
    case CutId::kAlu: return make_alu_routine(opts);
    default: return make_control_routine(opts);
  }
}

int cmd_inventory(const ProcessorModel& model) {
  Table t({"Component", "Class", "GE", "Strategy", "Priority",
           "Periodic", "Excited by"});
  for (const ComponentInfo* c : model.by_priority()) {
    t.add_row({c->name, class_name(c->cls),
               Table::num(static_cast<std::uint64_t>(c->gate_equivalents())),
               strategy_name(c->default_strategy),
               Table::num(static_cast<std::uint64_t>(c->test_priority)),
               c->periodic_suitable ? "yes" : "no", c->excite});
  }
  t.print();
  std::printf("total: %s gate equivalents, D-VC share %.1f%%\n",
              Table::num(static_cast<std::uint64_t>(
                             model.total_gate_equivalents()))
                  .c_str(),
              100 * model.class_area_fraction(ComponentClass::kDataVisible));
  return 0;
}

int cmd_generate(const ProcessorModel& model, CutId cut) {
  const Routine r = make_routine(model, cut);
  std::printf("# routine %s  style %s  target %s  signature slot %u\n",
              r.name.c_str(), r.style.c_str(),
              model.component(cut).name.c_str(), r.sig_slot);
  std::fputs(r.assembly.c_str(), stdout);
  if (!r.data_assembly.empty()) {
    std::puts("# data");
    std::fputs(r.data_assembly.c_str(), stdout);
  }
  return 0;
}

int cmd_program(const ProcessorModel& model, bool listing) {
  TestProgramBuilder builder;
  builder.add_default_routines(model);
  const TestProgram program = builder.build();
  if (listing) {
    std::fputs(isa::listing(program.image.words, program.image.base).c_str(),
               stdout);
  } else {
    for (const Routine& r : program.routines) {
      std::printf("# ---- %s (%s) ----\n", r.name.c_str(), r.style.c_str());
      std::fputs(r.assembly.c_str(), stdout);
    }
    std::fputs("  break\n", stdout);
    std::fputs(misr_subroutines().c_str(), stdout);
    std::fputs("signatures:\n  .word 0, 0, 0, 0, 0, 0, 0, 0\n", stdout);
    for (const Routine& r : program.routines) {
      std::fputs(r.data_assembly.c_str(), stdout);
    }
  }
  std::fprintf(stderr, "# %zu words, %zu routines\n",
               program.image.size_words(), program.routines.size());
  return 0;
}

int cmd_export(const ProcessorModel& model, CutId cut, const char* format) {
  const netlist::Netlist& nl = model.component(cut).netlist;
  if (format && std::strcmp(format, "blif") == 0) {
    std::fputs(netlist::to_blif(nl).c_str(), stdout);
  } else {
    std::fputs(netlist::to_verilog(nl).c_str(), stdout);
  }
  return 0;
}

GradingSession make_session(const ProcessorModel& model,
                            const serve::ServeOptions& options,
                            std::shared_ptr<store::ArtifactStore> store) {
  SessionOptions sopts;
  sopts.num_threads = options.sim.num_threads;
  sopts.cache = options.session_cache;
  sopts.lanes = options.sim.lanes;
  sopts.netlist_opt = options.sim.netlist_opt;
  sopts.budget_factor = options.budget_factor;
  sopts.store = std::move(store);
  return GradingSession(model, sopts);
}

// `conform generate`: write a randomized corpus directory. The summary on
// stdout (count, classes, content hash) is deterministic for a given
// (seed, count); wall-clock goes to stderr.
int cmd_conform_generate(std::uint64_t seed, std::size_t count,
                         const char* out_dir) {
  const auto t0 = std::chrono::steady_clock::now();
  const conform::CaseGen gen({.seed = seed, .count = count});
  const conform::Corpus corpus = gen.generate();
  conform::save_corpus(corpus, out_dir);
  std::size_t traps = 0;
  for (const conform::ConformCase& c : corpus.cases) {
    if (!c.trap.empty()) ++traps;
  }
  std::printf("conform: generated %zu cases, %zu classes, %zu trap cases, "
              "seed %llu\n",
              corpus.cases.size(),
              conform::corpus_class_names(corpus).size(), traps,
              static_cast<unsigned long long>(corpus.seed));
  std::printf("corpus %s content hash %016llx\n", corpus.version.c_str(),
              static_cast<unsigned long long>(
                  conform::corpus_content_hash(corpus)));
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::fprintf(stderr, "# conform: generated in %.3f s, wrote %s\n", wall,
               out_dir);
  return 0;
}

int cmd_conform(const ProcessorModel& model,
                const serve::ServeOptions& options,
                std::shared_ptr<store::ArtifactStore> store,
                const std::vector<const char*>& args) {
  if (args.size() < 2) return usage();
  const std::string sub = args[1];
  if (sub == "generate") {
    std::uint64_t seed = 1;
    std::size_t count = 500;
    const char* out_dir = nullptr;
    for (std::size_t k = 2; k < args.size(); ++k) {
      const char* a = args[k];
      if (std::strcmp(a, "--seed") == 0 && k + 1 < args.size()) {
        char* end = nullptr;
        seed = std::strtoull(args[++k], &end, 10);
        if (end == args[k] || *end != '\0') return usage();
      } else if (std::strcmp(a, "--count") == 0 && k + 1 < args.size()) {
        const long v = std::strtol(args[++k], nullptr, 10);
        if (v <= 0) return usage();
        count = static_cast<std::size_t>(v);
      } else if (std::strcmp(a, "--out") == 0 && k + 1 < args.size()) {
        out_dir = args[++k];
      } else {
        return usage();
      }
    }
    if (!out_dir) return usage();
    return cmd_conform_generate(seed, count, out_dir);
  }
  if (sub == "run") {
    if (args.size() != 3) return usage();
    GradingSession session = make_session(model, options, store);
    const int status =
        serve::render_conform_run(session, args[2], stdout, stderr);
    serve::print_store_summary(session, store.get(), stderr);
    return status;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  // Strip global options; everything else stays positional.
  serve::ServeOptions options;
  const char* store_spec = std::getenv("SBST_STORE");
  const char* model_spec = std::getenv("SBST_FAULT_MODEL");
  std::uint64_t store_budget = 0;
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--threads") == 0 || std::strcmp(a, "-j") == 0) {
      if (i + 1 >= argc) return usage();
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v <= 0) return usage();
      options.sim.num_threads = static_cast<unsigned>(v);
    } else if (std::strcmp(a, "--no-lane-parallel") == 0) {
      options.sim.lane_parallel = false;
    } else if (std::strcmp(a, "--session-cache") == 0) {
      options.session_cache = true;
    } else if (std::strcmp(a, "--no-session-cache") == 0) {
      options.session_cache = false;
    } else if (std::strcmp(a, "--cpu-stats") == 0) {
      options.cpu_stats = true;
    } else if (std::strcmp(a, "--budget-factor") == 0) {
      if (i + 1 >= argc) return usage();
      char* end = nullptr;
      options.budget_factor = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0') return usage();
    } else if (std::strcmp(a, "--max-faults") == 0) {
      if (i + 1 >= argc) return usage();
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v < 0) return usage();
      options.max_faults = static_cast<std::size_t>(v);
    } else if (std::strcmp(a, "--serve-threads") == 0) {
      if (i + 1 >= argc) return usage();
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v <= 0) return usage();
      options.serve_threads = static_cast<unsigned>(v);
    } else if (std::strcmp(a, "--serve-queue") == 0) {
      if (i + 1 >= argc) return usage();
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v <= 0) return usage();
      options.queue_depth = static_cast<std::size_t>(v);
    } else if (std::strcmp(a, "--request-deadline") == 0) {
      if (i + 1 >= argc) return usage();
      const char* value = argv[++i];
      if (std::strcmp(value, "auto") == 0) {
        options.request_deadline_ms = -1;  // derive from cached good runs
      } else {
        char* end = nullptr;
        options.request_deadline_ms = std::strtod(value, &end);
        if (end == value || *end != '\0' || options.request_deadline_ms < 0) {
          return usage();
        }
      }
    } else if (std::strcmp(a, "--journal") == 0) {
      if (i + 1 >= argc) return usage();
      options.journal_path = argv[++i];
    } else if (std::strcmp(a, "--replay-journal") == 0) {
      options.replay_journal = true;
    } else if (std::strcmp(a, "--store-budget") == 0) {
      if (i + 1 >= argc) return usage();
      char* end = nullptr;
      store_budget = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') return usage();
    } else if (std::strcmp(a, "--engine") == 0 ||
               std::strncmp(a, "--engine=", 9) == 0) {
      const char* name = a[8] == '=' ? a + 9 : nullptr;
      if (!name) {
        if (i + 1 >= argc) return usage();
        name = argv[++i];
      }
      if (!fault::parse_engine(name, options.sim.engine)) return usage();
    } else if (std::strcmp(a, "--lanes") == 0 ||
               std::strncmp(a, "--lanes=", 8) == 0) {
      const char* value = a[7] == '=' ? a + 8 : nullptr;
      if (!value) {
        if (i + 1 >= argc) return usage();
        value = argv[++i];
      }
      if (!fault::parse_lanes(value, options.sim.lanes)) return usage();
    } else if (std::strcmp(a, "--netlist-opt") == 0) {
      options.sim.netlist_opt = 1;
    } else if (std::strcmp(a, "--no-netlist-opt") == 0) {
      options.sim.netlist_opt = 0;
    } else if (std::strcmp(a, "--store") == 0 ||
               std::strncmp(a, "--store=", 8) == 0) {
      const char* value = a[7] == '=' ? a + 8 : nullptr;
      if (!value) {
        if (i + 1 >= argc) return usage();
        value = argv[++i];
      }
      store_spec = value;
    } else if (std::strcmp(a, "--no-store") == 0) {
      store_spec = nullptr;
    } else if (std::strcmp(a, "--fault-model") == 0 ||
               std::strncmp(a, "--fault-model=", 14) == 0) {
      const char* value = a[13] == '=' ? a + 14 : nullptr;
      if (!value) {
        if (i + 1 >= argc) return usage();
        value = argv[++i];
      }
      model_spec = value;
    } else {
      args.push_back(a);
    }
  }
  if (args.empty()) return usage();
  if (model_spec &&
      !serve::parse_fault_model_list(model_spec, options.fault_models)) {
    std::fprintf(stderr,
                 "sbst: bad fault-model list \"%s\" (stuck-at | transition "
                 "| transient | intermittent, comma separated)\n",
                 model_spec);
    return usage();
  }

  std::shared_ptr<store::ArtifactStore> store;
  if (store_spec) {
    const std::string dir = store::ArtifactStore::resolve_dir(store_spec);
    if (dir.empty()) {
      // "auto" with neither $XDG_CACHE_HOME nor $HOME set: fail soft. Warn
      // once and run storeless rather than scribbling into the working
      // directory or refusing to run at all.
      std::fprintf(stderr,
                   "sbst: store \"auto\" has no cache root ($XDG_CACHE_HOME "
                   "and $HOME unset); running without a persistent store\n");
    } else {
      store = std::make_shared<store::ArtifactStore>(dir);
      if (store_budget > 0) store->set_budget(store_budget);
      options.sim.store = store.get();
    }
  }

  const std::string cmd = args[0];
  ProcessorModel model;
  if (cmd == "inventory") return cmd_inventory(model);
  if (cmd == "program") return cmd_program(model, false);
  if (cmd == "listing") return cmd_program(model, true);
  if (cmd == "evaluate") {
    GradingSession session = make_session(model, options, store);
    const int status =
        serve::render_evaluate(session, options.sim, options.cpu_stats,
                               stdout, stderr, options.fault_models);
    serve::print_store_summary(session, store.get(), stderr);
    return status;
  }
  if (cmd == "campaign") {
    std::vector<CutId> cuts;
    for (std::size_t k = 1; k < args.size(); ++k) {
      CutId cut;
      if (!parse_cut(args[k], cut)) return usage();
      if (!serve::injectable_cut(cut)) {
        std::fprintf(stderr,
                     "campaign: %s is not an injectable CUT "
                     "(alu / shifter / mul)\n",
                     args[k]);
        return 2;
      }
      cuts.push_back(cut);
    }
    if (cuts.empty()) {
      cuts = {CutId::kAlu, CutId::kShifter, CutId::kMultiplier};
    }
    GradingSession session = make_session(model, options, store);
    const int status = serve::render_campaign(session, options.sim,
                                              options.max_faults, cuts,
                                              stdout, stderr,
                                              options.fault_models);
    serve::print_store_summary(session, store.get(), stderr);
    return status;
  }
  if (cmd == "serve") {
    if (args.size() != 1) return usage();
    return serve::run_serve(model, options, store, stdin, stdout, stderr);
  }
  if (cmd == "conform") {
    try {
      return cmd_conform(model, options, store, args);
    } catch (const conform::ConformError& e) {
      std::fprintf(stderr, "conform: %s\n", e.what());
      return 1;
    }
  }
  if (cmd == "generate" || cmd == "export") {
    if (args.size() < 2) return usage();
    CutId cut;
    if (!parse_cut(args[1], cut)) return usage();
    return cmd == "generate"
               ? cmd_generate(model, cut)
               : cmd_export(model, cut, args.size() > 2 ? args[2] : nullptr);
  }
  return usage();
}
