// Periodic self-test demo: an embedded appliance running the SBST program
// on a timer while an intermittent operational fault comes and goes — the
// paper's target deployment (low-cost system, no hardware redundancy).
//
// The demo steps simulated wall-clock time; at every test launch it runs
// the REAL SBST program on the CPU model, injecting the gate-level fault
// only while the intermittent fault process is active, and compares the
// signature words against the golden ones.
#include <cstdio>

#include "core/inject.hpp"
#include "core/periodic.hpp"
#include "core/program.hpp"
#include "sim/cpu.hpp"

using namespace sbst;
using namespace sbst::core;

int main() {
  ProcessorModel model;
  TestProgramBuilder builder;
  builder.add(make_alu_routine(builder.options()));
  const TestProgram program = builder.build();

  // Golden signatures from a fault-free run.
  sim::Cpu golden;
  golden.reset();
  golden.load(program.image);
  golden.run(program.entry);
  std::vector<std::uint32_t> good_sigs;
  for (unsigned s = 0; s < kSignatureSlots; ++s) {
    good_sigs.push_back(golden.read_word(program.signature_address(s)));
  }

  // The operational fault: an intermittent stuck-at in the ALU that is
  // active 300 ms out of every second, arriving at t = 2.4 s.
  const netlist::Netlist& alu = model.component(CutId::kAlu).netlist;
  fault::FaultUniverse universe(alu);
  const fault::Fault fault = universe.collapsed()[42];
  const FaultProcess process{.kind = FaultKind::kIntermittent,
                             .arrival_s = 2.4,
                             .period_s = 1.0,
                             .active_s = 0.3};

  std::printf("appliance boots; SBST timer period 0.7 s; fault %s arrives "
              "at t=%.1fs (intermittent, 30%% duty)\n\n",
              fault::fault_name(alu, fault).c_str(), process.arrival_s);

  const double test_period = 0.7;
  bool detected = false;
  for (int k = 1; k <= 12 && !detected; ++k) {
    const double t = k * test_period;
    const bool active = fault_active_at(process, t);

    sim::Cpu cpu;
    cpu.reset();
    cpu.load(program.image);
    GateLevelFaultInjector injector(model, CutId::kAlu, fault);
    if (active) cpu.set_hooks(&injector);
    cpu.run(program.entry);

    bool mismatch = false;
    for (unsigned s = 0; s < kSignatureSlots; ++s) {
      mismatch |= cpu.read_word(program.signature_address(s)) != good_sigs[s];
    }
    std::printf("t=%5.2fs  self-test run %2d: fault %-8s  signature %s\n",
                t, k, active ? "ACTIVE" : "dormant",
                mismatch ? "MISMATCH -> fault detected!" : "ok");
    if (mismatch) {
      std::printf("\ndetection latency: %.2f s after fault arrival "
                  "(test period %.1f s, duty 30%%)\n",
                  t - process.arrival_s, test_period);
      detected = true;
    }
  }
  if (!detected) {
    std::puts("\nfault escaped this horizon (short duty cycle) -- "
              "shorten the test period to improve the odds");
  }
  return detected ? 0 : 1;
}
