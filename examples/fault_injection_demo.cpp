// Fault-injection demo: sample stuck-at faults across three components,
// inject each into program execution at gate level, and show how the MISR
// signatures expose them — including the assembly the program actually runs.
//
// Usage: fault_injection_demo [samples-per-component]   (default 5)
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "core/inject.hpp"
#include "core/program.hpp"
#include "isa/disasm.hpp"

using namespace sbst;
using namespace sbst::core;

int main(int argc, char** argv) {
  const int samples = argc > 1 ? std::atoi(argv[1]) : 5;

  ProcessorModel model;
  TestProgramBuilder builder;
  builder.add(make_alu_routine(builder.options()))
      .add(make_shifter_routine(model, builder.options()))
      .add(make_multiplier_routine(builder.options()));
  const TestProgram program = builder.build();

  std::printf("SBST program (%zu words). First lines of the ALU routine:\n",
              program.image.size_words());
  for (unsigned i = 0; i < 6; ++i) {
    const std::uint32_t addr = program.sections[0].begin_addr + 4 * i;
    const std::uint32_t w = program.image.words[(addr - program.image.base) / 4];
    std::printf("  0x%04x: %s\n", addr, isa::disassemble(w, addr).c_str());
  }
  std::puts("");

  Rng rng(1234);
  int total = 0, caught = 0;
  for (CutId cut : {CutId::kAlu, CutId::kShifter, CutId::kMultiplier}) {
    const ComponentInfo& info = model.component(cut);
    fault::FaultUniverse universe(info.netlist);
    std::printf("--- %s: %zu collapsed faults, sampling %d ---\n",
                info.name.c_str(), universe.size(), samples);
    for (int i = 0; i < samples; ++i) {
      const fault::Fault f =
          universe.collapsed()[rng.below(universe.size())];
      const InjectionOutcome out =
          run_with_injection(model, program, cut, f);
      ++total;
      caught += out.detected;
      std::printf("  %-28s corrupted %5llu results -> %s\n",
                  fault::fault_name(info.netlist, f).c_str(),
                  static_cast<unsigned long long>(out.corrupted_results),
                  out.detected ? "DETECTED" : "missed");
    }
  }
  std::printf("\ndetected %d / %d sampled faults end-to-end via signatures\n",
              caught, total);
  return 0;
}
