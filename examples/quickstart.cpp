// Quickstart: the complete SBST flow in ~60 lines.
//
//   1. Build the processor model (components + classification).
//   2. Generate self-test routines and assemble the SBST program.
//   3. Run it on the CPU model and fault-grade the components it targets.
//   4. Inject a gate-level fault and watch the signature catch it.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/evaluate.hpp"
#include "core/inject.hpp"

using namespace sbst;
using namespace sbst::core;

int main() {
  // 1. The Plasma-class processor: every component carries its gate-level
  //    netlist and its paper-§3.2 classification.
  ProcessorModel model;
  std::puts("Processor components (priority order):");
  for (const ComponentInfo* c : model.by_priority()) {
    std::printf("  %-18s %-5s %7.0f GE  excite: %s\n", c->name.c_str(),
                class_name(c->cls), c->gate_equivalents(),
                c->excite.c_str());
  }

  // 2. A compact SBST program: ALU + shifter + control routines.
  TestProgramBuilder builder;
  builder.add(make_alu_routine(builder.options()))
      .add(make_shifter_routine(model, builder.options()))
      .add(make_control_routine(builder.options()));
  const TestProgram program = builder.build();
  std::printf("\nSBST program: %zu words, %zu routines, signatures at 0x%x\n",
              program.image.size_words(), program.routines.size(),
              program.signature_base);

  // 3. Execute with tracing and grade the targeted components.
  const ProgramEvaluation ev = evaluate_program(model, builder, program);
  std::printf("execution: %llu instructions, %llu cycles, %llu pipeline "
              "stalls, %llu data refs\n",
              static_cast<unsigned long long>(ev.total.instructions),
              static_cast<unsigned long long>(ev.total.cpu_cycles),
              static_cast<unsigned long long>(
                  ev.total.pipeline_stall_cycles),
              static_cast<unsigned long long>(ev.total.data_references()));
  for (CutId cut : {CutId::kAlu, CutId::kShifter, CutId::kControl}) {
    std::printf("  %-14s fault coverage %.2f%%\n",
                model.component(cut).name.c_str(),
                ev.cut(cut).coverage.percent());
  }

  // 4. End-to-end detection: break one gate in the ALU and re-run.
  const netlist::Netlist& alu = model.component(CutId::kAlu).netlist;
  fault::FaultUniverse universe(alu);
  const fault::Fault fault = universe.collapsed()[universe.size() / 2];
  const InjectionOutcome out =
      run_with_injection(model, program, CutId::kAlu, fault);
  std::printf("\ninjected %s into the ALU:\n",
              fault::fault_name(alu, fault).c_str());
  std::printf("  good   signature[ALU slot]: %08x\n",
              out.good_signatures[5]);
  std::printf("  faulty signature[ALU slot]: %08x\n",
              out.faulty_signatures[5]);
  std::printf("  corrupted ALU results during the run: %llu\n",
              static_cast<unsigned long long>(out.corrupted_results));
  std::printf("  => fault %s by the periodic self-test\n",
              out.detected ? "DETECTED" : "missed");
  return out.detected ? 0 : 1;
}
