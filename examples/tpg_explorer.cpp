// TPG explorer: compare the three test-pattern-generation strategies on a
// chosen component and width.
//
// Usage: tpg_explorer [alu|shifter] [width]   (defaults: alu 16)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "atpg/testgen.hpp"
#include "common/tablefmt.hpp"
#include "core/tpg.hpp"
#include "fault/sim.hpp"
#include "rtlgen/alu.hpp"
#include "rtlgen/shifter.hpp"

using namespace sbst;
using namespace sbst::core;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "alu";
  const unsigned width = argc > 2
                             ? static_cast<unsigned>(std::atoi(argv[2]))
                             : 16u;
  netlist::Netlist nl =
      which == "shifter" ? rtlgen::build_shifter({.width = width})
                         : rtlgen::build_alu({.width = width});
  std::printf("component: %s, width %u -> %zu gates (%.0f GE), depth %u\n",
              which.c_str(), width, nl.logic_gate_count(),
              nl.gate_equivalents(), nl.depth());

  fault::FaultUniverse universe(nl);
  std::printf("fault universe: %zu collapsed / %zu uncollapsed\n\n",
              universe.size(), universe.uncollapsed_count());

  Table t({"Strategy", "Patterns", "FC (%)", "Notes"});

  // Regular deterministic.
  fault::PatternSet regular =
      which == "shifter"
          ? shifter_pattern_set(nl, regular_shifter_tests(width))
          : alu_pattern_set(nl, regular_alu_tests(width));
  const auto reg_cov =
      fault::simulate_comb(nl, universe.collapsed(), regular);
  t.add_row({"RegD (regular deterministic)",
             Table::num(static_cast<std::uint64_t>(regular.size())),
             Table::num(reg_cov.percent(), 2),
             "closed-form, implementation independent"});

  // Pseudorandom at several N.
  for (std::size_t n : {64u, 256u, 1024u}) {
    const fault::PatternSet pr = atpg::generate_random_tests(nl, n, 99);
    const auto cov = fault::simulate_comb(nl, universe.collapsed(), pr);
    t.add_row({"PR (software LFSR)",
               Table::num(static_cast<std::uint64_t>(n)),
               Table::num(cov.percent(), 2), "Figure-3 loop equivalent"});
  }

  // Deterministic ATPG.
  atpg::TestGenOptions tg;
  tg.random_warmup = 8;
  tg.podem.backtrack_limit = 100000;
  const atpg::TestGenResult det =
      atpg::generate_atpg_tests(nl, universe.collapsed(), {}, tg);
  char note[96];
  std::snprintf(note, sizeof note, "%zu untestable, %zu aborted",
                det.untestable, det.aborted);
  t.add_row({"AtpgD (PODEM + drop)",
             Table::num(static_cast<std::uint64_t>(det.patterns.size())),
             Table::num(det.coverage.percent(), 2), note});
  t.print();

  // Leftovers of the best strategy.
  const auto undetected = reg_cov.undetected(universe.collapsed());
  std::printf("\nfirst undetected faults under RegD (%zu total):\n",
              undetected.size());
  for (std::size_t i = 0; i < undetected.size() && i < 5; ++i) {
    std::printf("  %s\n", fault::fault_name(nl, undetected[i]).c_str());
  }
  return 0;
}
